package bist

import (
	"testing"

	"repro/internal/bench89"
	"repro/internal/netlist"
)

func standIn(t *testing.T, name string) *netlist.Circuit {
	t.Helper()
	prof, ok := bench89.ProfileByName(name)
	if !ok {
		t.Fatalf("profile %s missing", name)
	}
	return bench89.MustGenerate(prof)
}

func TestRunHybridBIST(t *testing.T) {
	c := standIn(t, "s953")
	res, err := Run(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.RandomCoverage <= 0.5 {
		t.Errorf("random phase coverage %.3f suspiciously low", res.RandomCoverage)
	}
	if res.FinalCoverage < res.RandomCoverage {
		t.Error("top-up cannot lower coverage")
	}
	if res.FinalCoverage < 0.95 {
		t.Errorf("final coverage %.3f too low", res.FinalCoverage)
	}
	// The whole point: the hybrid tester payload undercuts the all-
	// external payload.
	if res.ExternalDataBits >= res.FullExternalDataBits {
		t.Errorf("hybrid %d bits not below full %d bits", res.ExternalDataBits, res.FullExternalDataBits)
	}
	if res.Reduction() <= 1 {
		t.Errorf("reduction = %.2f, want > 1", res.Reduction())
	}
	// Top-up targets only random-resistant faults, so it is small.
	if len(res.TopUpPatterns) > res.NumFaults/10 {
		t.Errorf("top-up set too large: %d patterns", len(res.TopUpPatterns))
	}
}

func TestRunDeterministic(t *testing.T) {
	c := standIn(t, "s713")
	a, err := Run(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.RandomDetected != b.RandomDetected || a.ExternalDataBits != b.ExternalDataBits {
		t.Error("hybrid BIST not deterministic")
	}
}

func TestRunValidation(t *testing.T) {
	c := standIn(t, "s713")
	opts := DefaultOptions()
	opts.RandomPatterns = 0
	if _, err := Run(c, opts); err == nil {
		t.Error("zero budget accepted")
	}
	opts = DefaultOptions()
	opts.LFSRWidth = 13
	if _, err := Run(c, opts); err == nil {
		t.Error("unsupported LFSR width accepted")
	}
	opts = DefaultOptions()
	opts.Seed = 0
	if _, err := Run(c, opts); err == nil {
		t.Error("zero seed accepted")
	}
	raw := netlist.New("raw")
	raw.MustAddGate("a", netlist.Input)
	if _, err := Run(raw, DefaultOptions()); err == nil {
		t.Error("non-finalized circuit accepted")
	}
}

func TestMorePatternsHelpOrEqual(t *testing.T) {
	c := standIn(t, "s713")
	small := DefaultOptions()
	small.RandomPatterns = 256
	big := DefaultOptions()
	big.RandomPatterns = 4096
	a, err := Run(c, small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, big)
	if err != nil {
		t.Fatal(err)
	}
	if b.RandomCoverage < a.RandomCoverage {
		t.Errorf("more random patterns lowered coverage: %.3f -> %.3f", a.RandomCoverage, b.RandomCoverage)
	}
	if len(b.TopUpPatterns) > len(a.TopUpPatterns) {
		t.Errorf("more random patterns grew the top-up set: %d -> %d",
			len(a.TopUpPatterns), len(b.TopUpPatterns))
	}
}
