// Package cli holds the shared command-line conventions of the repro
// tools: a uniform "prog: message" stderr format with fixed exit codes
// (2 for usage errors, 1 for runtime failures), and the common
// observability flag set (-trace, -metrics, -cpuprofile) every
// experiment-running command exposes.
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"repro/internal/obs"
)

// Exit codes shared by every command.
const (
	ExitRuntime = 1 // runtime failure (I/O, parse, experiment error)
	ExitUsage   = 2 // bad flags or arguments
)

// Fatalf prints "prog: message" to stderr and exits with ExitRuntime.
func Fatalf(prog, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", prog, fmt.Sprintf(format, args...))
	os.Exit(ExitRuntime)
}

// Usagef prints "prog: message" to stderr and exits with ExitUsage.
func Usagef(prog, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", prog, fmt.Sprintf(format, args...))
	os.Exit(ExitUsage)
}

// Check calls Fatalf when err is non-nil.
func Check(prog string, err error) {
	if err != nil {
		Fatalf(prog, "%v", err)
	}
}

// Obs is the shared observability flag set. Register it on the command's
// FlagSet, call Start after flag parsing, and defer Stop; Collector
// returns nil when no observability flag was given, so instrumented
// libraries stay on their zero-cost path by default.
type Obs struct {
	TracePath  string
	TraceText  bool
	Metrics    bool
	CPUProfile string

	prog      string
	col       *obs.Collector
	reg       *obs.Registry
	sink      obs.Sink
	traceFile *os.File
	profile   *os.File
}

// Register installs -trace, -trace-text, -metrics and -cpuprofile on fs.
func (o *Obs) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.TracePath, "trace", "", "write a structured JSONL event trace to `file` (- for stderr)")
	fs.BoolVar(&o.TraceText, "trace-text", false, "with -trace, write human-readable text instead of JSONL")
	fs.BoolVar(&o.Metrics, "metrics", false, "print end-of-run counters/timers/histograms to stderr")
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", "write a CPU profile to `file`")
}

// Enabled reports whether any observability flag was given.
func (o *Obs) Enabled() bool {
	return o.TracePath != "" || o.Metrics || o.CPUProfile != ""
}

// Start opens the trace sink and CPU profile as requested and returns the
// collector (nil when nothing was requested). Errors are fatal in the
// uniform CLI style.
func (o *Obs) Start(prog string) *obs.Collector {
	o.prog = prog
	if o.CPUProfile != "" {
		f, err := os.Create(o.CPUProfile)
		Check(prog, err)
		Check(prog, pprof.StartCPUProfile(f))
		o.profile = f
	}
	if o.TracePath != "" {
		w := os.Stderr
		if o.TracePath != "-" {
			f, err := os.Create(o.TracePath)
			Check(prog, err)
			o.traceFile = f
			w = f
		}
		if o.TraceText {
			o.sink = obs.NewTextSink(w)
		} else {
			o.sink = obs.NewJSONLSink(w)
		}
	}
	if o.Enabled() {
		o.reg = obs.NewRegistry()
		o.col = obs.New(o.reg, o.sink)
	}
	return o.col
}

// Collector returns the collector built by Start (nil when disabled).
func (o *Obs) Collector() *obs.Collector { return o.col }

// Registry returns the metrics registry built by Start (nil when
// disabled). Useful for building a manifest.
func (o *Obs) Registry() *obs.Registry { return o.reg }

// Stop finalizes everything Start opened: emits the manifest as the final
// trace event when one is given, stops the CPU profile, closes the trace
// file (failing loudly on a poisoned sink) and prints the metrics dump
// when -metrics was set.
func (o *Obs) Stop(manifest *obs.Manifest) {
	if manifest != nil {
		manifest.EmitTo(o.col)
	}
	if o.profile != nil {
		pprof.StopCPUProfile()
		Check(o.prog, o.profile.Close())
		o.profile = nil
	}
	if o.sink != nil {
		Check(o.prog, o.sink.Err())
		o.sink = nil
	}
	if o.traceFile != nil {
		Check(o.prog, o.traceFile.Close())
		o.traceFile = nil
	}
	if o.Metrics && o.reg != nil {
		fmt.Fprint(os.Stderr, o.reg.Snapshot().String())
	}
}
