// Package cli holds the shared command-line conventions of the repro
// tools: a uniform "prog: message" stderr format with fixed exit codes
// (2 for usage errors, 1 for runtime failures, 3 for runs stopped by a
// deadline, 130 for SIGINT), the common observability flag set (-trace,
// -metrics, -cpuprofile), and the shared resilience flag set (-timeout,
// -checkpoint, -checkpoint-every, -resume, -fault-budget) of every
// experiment-running command.
package cli

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"repro/internal/atpg"
	"repro/internal/obs"
	"repro/internal/runctl"
)

// Exit codes shared by every command.
const (
	ExitRuntime     = 1   // runtime failure (I/O, parse, experiment error)
	ExitUsage       = 2   // bad flags or arguments
	ExitIncomplete  = 3   // run stopped by -timeout/cancellation; partial state flushed
	ExitInterrupted = 130 // run stopped by SIGINT/SIGTERM (128+SIGINT), state flushed
)

// Fatalf prints "prog: message" to stderr and exits with ExitRuntime.
func Fatalf(prog, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", prog, fmt.Sprintf(format, args...))
	os.Exit(ExitRuntime)
}

// Usagef prints "prog: message" to stderr and exits with ExitUsage.
func Usagef(prog, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", prog, fmt.Sprintf(format, args...))
	os.Exit(ExitUsage)
}

// Check calls Fatalf when err is non-nil.
func Check(prog string, err error) {
	if err != nil {
		Fatalf(prog, "%v", err)
	}
}

// Errorf prints "prog: message" to stderr without exiting, for commands
// structured as run() functions that must flush traces and manifests on
// every exit path before returning their code.
func Errorf(prog, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", prog, fmt.Sprintf(format, args...))
}

// ExitCode maps a pipeline error to the command's exit code: 0 for nil,
// ExitInterrupted when a signal cancelled the run, ExitIncomplete for a
// deadline/cancellation, ExitRuntime otherwise.
func ExitCode(err error, interrupted bool) int {
	switch {
	case err == nil:
		return 0
	case interrupted:
		return ExitInterrupted
	case runctl.IsCancel(err):
		return ExitIncomplete
	default:
		return ExitRuntime
	}
}

// RunFlags is the shared resilience flag set: run deadline, checkpoint
// location and cadence, resume, and the per-fault degradation budget.
type RunFlags struct {
	Timeout         time.Duration
	CheckpointPath  string
	CheckpointEvery int
	Resume          bool
	FaultBudget     time.Duration
}

// Register installs -timeout, -checkpoint, -checkpoint-every, -resume and
// -fault-budget on fs.
func (r *RunFlags) Register(fs *flag.FlagSet) {
	fs.DurationVar(&r.Timeout, "timeout", 0, "wall-clock budget for the whole run (e.g. 90s; 0 = none); an exceeded budget stops the run with exit code 3 after flushing partial state")
	fs.StringVar(&r.CheckpointPath, "checkpoint", "", "periodically save generation state to `file` (atomic replace); interrupted runs keep the last complete checkpoint")
	fs.IntVar(&r.CheckpointEvery, "checkpoint-every", 0, "targeted faults between checkpoint writes (default 64)")
	fs.BoolVar(&r.Resume, "resume", false, "with -checkpoint, continue from the checkpoint file when present (bit-for-bit identical results)")
	fs.DurationVar(&r.FaultBudget, "fault-budget", 0, "wall-clock budget per targeted fault (0 = none); exhausted faults degrade to aborted instead of wedging the run")
}

// Validate reports flag-combination errors (currently: -resume without
// -checkpoint).
func (r *RunFlags) Validate() error {
	if r.Resume && r.CheckpointPath == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	return nil
}

// Checkpoint returns the checkpoint configuration implied by the flags,
// or nil when -checkpoint was not given.
func (r *RunFlags) Checkpoint() *atpg.CheckpointConfig {
	if r.CheckpointPath == "" {
		return nil
	}
	return &atpg.CheckpointConfig{Path: r.CheckpointPath, Every: r.CheckpointEvery, Resume: r.Resume}
}

// Context derives the run context from the flags: cancelled on SIGINT or
// SIGTERM (first signal only — a second one kills the process), and bounded
// by -timeout when set. interrupted reports whether a signal arrived (it
// decides ExitInterrupted vs ExitIncomplete); stop releases the handler.
func (r *RunFlags) Context(parent context.Context) (ctx context.Context, interrupted func() bool, stop func()) {
	ctx, interrupted, sigStop := runctl.SignalContext(parent)
	if r.Timeout <= 0 {
		return ctx, interrupted, sigStop
	}
	ctx, cancel := context.WithTimeout(ctx, r.Timeout)
	return ctx, interrupted, func() {
		cancel()
		sigStop()
	}
}

// Obs is the shared observability flag set. Register it on the command's
// FlagSet, call Start after flag parsing, and defer Stop; Collector
// returns nil when no observability flag was given, so instrumented
// libraries stay on their zero-cost path by default.
type Obs struct {
	TracePath  string
	TraceText  bool
	Metrics    bool
	CPUProfile string

	prog      string
	col       *obs.Collector
	reg       *obs.Registry
	sink      obs.Sink
	traceFile *os.File
	profile   *os.File
}

// Register installs -trace, -trace-text, -metrics and -cpuprofile on fs.
func (o *Obs) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.TracePath, "trace", "", "write a structured JSONL event trace to `file` (- for stderr)")
	fs.BoolVar(&o.TraceText, "trace-text", false, "with -trace, write human-readable text instead of JSONL")
	fs.BoolVar(&o.Metrics, "metrics", false, "print end-of-run counters/timers/histograms to stderr")
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", "write a CPU profile to `file`")
}

// Enabled reports whether any observability flag was given.
func (o *Obs) Enabled() bool {
	return o.TracePath != "" || o.Metrics || o.CPUProfile != ""
}

// Start opens the trace sink and CPU profile as requested and returns the
// collector (nil when nothing was requested). Errors are fatal in the
// uniform CLI style.
func (o *Obs) Start(prog string) *obs.Collector {
	o.prog = prog
	if o.CPUProfile != "" {
		//lintgo:allow GO004 pprof streams into the handle for the whole run; write-rename cannot wrap a live sink
		f, err := os.Create(o.CPUProfile)
		Check(prog, err)
		Check(prog, pprof.StartCPUProfile(f))
		o.profile = f
	}
	if o.TracePath != "" {
		w := os.Stderr
		if o.TracePath != "-" {
			//lintgo:allow GO004 the trace sink streams events as they happen; a torn trace from a crash is itself evidence
			f, err := os.Create(o.TracePath)
			Check(prog, err)
			o.traceFile = f
			w = f
		}
		if o.TraceText {
			o.sink = obs.NewTextSink(w)
		} else {
			o.sink = obs.NewJSONLSink(w)
		}
	}
	if o.Enabled() {
		o.reg = obs.NewRegistry()
		o.col = obs.New(o.reg, o.sink)
	}
	return o.col
}

// Collector returns the collector built by Start (nil when disabled).
func (o *Obs) Collector() *obs.Collector { return o.col }

// Registry returns the metrics registry built by Start (nil when
// disabled). Useful for building a manifest.
func (o *Obs) Registry() *obs.Registry { return o.reg }

// Stop finalizes everything Start opened: emits the manifest as the final
// trace event when one is given, stops the CPU profile, closes the trace
// file (failing loudly on a poisoned sink) and prints the metrics dump
// when -metrics was set.
func (o *Obs) Stop(manifest *obs.Manifest) {
	if manifest != nil {
		manifest.EmitTo(o.col)
	}
	if o.profile != nil {
		pprof.StopCPUProfile()
		Check(o.prog, o.profile.Close())
		o.profile = nil
	}
	if o.sink != nil {
		Check(o.prog, o.sink.Err())
		o.sink = nil
	}
	if o.traceFile != nil {
		Check(o.prog, o.traceFile.Close())
		o.traceFile = nil
	}
	if o.Metrics && o.reg != nil {
		fmt.Fprint(os.Stderr, o.reg.Snapshot().String())
	}
}
