package bench89

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/netlist"
)

func TestStandardProfilesMatchPublishedPorts(t *testing.T) {
	want := map[string][3]int{ // I, O, S from the paper's Tables 1-2
		"s713":   {35, 23, 19},
		"s953":   {16, 23, 29},
		"s1423":  {17, 5, 74},
		"s5378":  {35, 49, 179},
		"s13207": {31, 121, 669},
		"s15850": {14, 87, 597},
	}
	ps := StandardProfiles()
	if len(ps) != len(want) {
		t.Fatalf("profiles = %d, want %d", len(ps), len(want))
	}
	for _, p := range ps {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected profile %s", p.Name)
			continue
		}
		if p.Inputs != w[0] || p.Outputs != w[1] || p.DFFs != w[2] {
			t.Errorf("%s: %d/%d/%d, want %d/%d/%d", p.Name, p.Inputs, p.Outputs, p.DFFs, w[0], w[1], w[2])
		}
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("s713"); !ok {
		t.Error("s713 missing")
	}
	if _, ok := ProfileByName("c6288"); ok {
		t.Error("unknown name found")
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, p := range StandardProfiles() {
		if p.Gates > 1000 {
			continue // shapes of the big three are covered by the small ones
		}
		c, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		s := c.ComputeStats()
		if s.Inputs != p.Inputs || s.Outputs != p.Outputs || s.DFFs != p.DFFs {
			t.Errorf("%s: generated %d/%d/%d, want %d/%d/%d",
				p.Name, s.Inputs, s.Outputs, s.DFFs, p.Inputs, p.Outputs, p.DFFs)
		}
		// Cone budgets and inverter insertion make the gate count
		// approximate; it must stay within 30% of the target.
		if s.Gates < p.Gates*7/10 || s.Gates > p.Gates*13/10 {
			t.Errorf("%s: %d gates, want within 30%% of %d", p.Name, s.Gates, p.Gates)
		}
		if s.Depth < 4 {
			t.Errorf("%s: depth %d too shallow for a realistic circuit", p.Name, s.Depth)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("s953")
	a := MustGenerate(p)
	b := MustGenerate(p)
	if netlist.BenchString(a) != netlist.BenchString(b) {
		t.Error("generation not deterministic")
	}
	p.Seed++
	c := MustGenerate(p)
	if netlist.BenchString(a) == netlist.BenchString(c) {
		t.Error("different seeds produced identical circuits")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Profile{Name: "bad"}); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := Generate(Profile{Name: "bad", Inputs: 2, Outputs: 10, Gates: 5}); err == nil {
		t.Error("outputs > gates accepted")
	}
	if _, err := Generate(Profile{Name: "bad", Inputs: 1, Outputs: 1, Gates: 1, DFFs: -1}); err == nil {
		t.Error("negative DFFs accepted")
	}
}

func TestGeneratedCircuitIsATPGViable(t *testing.T) {
	// The stand-ins must be usable end to end: high effective coverage and
	// a meaningful pattern count under the default ATPG settings.
	p, _ := ProfileByName("s713")
	c := MustGenerate(p)
	res := atpg.Generate(c, atpg.DefaultOptions())
	if res.EffectiveCoverage < 0.90 {
		t.Errorf("s713 stand-in effective coverage %.3f", res.EffectiveCoverage)
	}
	if res.PatternCount() < 5 {
		t.Errorf("s713 stand-in pattern count %d suspiciously small", res.PatternCount())
	}
	undetected := res.NumFaults - res.NumDetected
	if undetected > res.NumRedundant+res.NumAborted {
		t.Errorf("accounting hole: %d undetected > %d+%d", undetected, res.NumRedundant, res.NumAborted)
	}
}

func TestGeneratedConesVary(t *testing.T) {
	// The paper's premise: cones in a circuit vary in size. Check the
	// stand-in exhibits a spread of cone widths.
	p, _ := ProfileByName("s953")
	c := MustGenerate(p)
	cones := c.AllCones()
	min, max := 1<<30, 0
	for i := range cones {
		w := cones[i].Width()
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	if max-min < 3 {
		t.Errorf("cone widths too uniform: %d..%d", min, max)
	}
}
