// Package bench89 provides deterministic, seeded synthetic stand-ins for
// the ISCAS'89 benchmark circuits used by the paper's SOC1 and SOC2
// experiments (s713, s953, s1423, s5378, s13207, s15850).
//
// The original netlists are external data this offline reproduction cannot
// ship, so each stand-in is generated with exactly the published primary
// input / primary output / scan-cell counts (which are what the TDV
// formulas consume) and a realistic multi-cone combinational structure for
// the live-ATPG experiments. Gate counts for the three largest circuits are
// reduced from the originals to keep end-to-end ATPG runs fast; the paper's
// mechanism (pattern-count variation across cones and cores, Equation 2)
// does not depend on absolute gate count. See DESIGN.md, "Reproduction
// constraints and substitutions".
package bench89

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/netlist"
	"repro/internal/obs"
)

// Profile describes a synthetic circuit to generate.
type Profile struct {
	Name    string
	Inputs  int
	Outputs int
	DFFs    int
	// Gates is the approximate number of combinational gates.
	Gates int
	// Seed fixes the generated structure.
	Seed int64
}

// standard lists the stand-in profiles with the published port/scan counts
// from the paper's Tables 1 and 2. Gate counts follow the original circuits
// (s713: 393, s953: 395, s1423: 657) but are scaled down for the three
// large cores (originals: 2779, 7951, 9772).
var standard = []Profile{
	{Name: "s713", Inputs: 35, Outputs: 23, DFFs: 19, Gates: 393, Seed: 713},
	{Name: "s953", Inputs: 16, Outputs: 23, DFFs: 29, Gates: 395, Seed: 953},
	{Name: "s1423", Inputs: 17, Outputs: 5, DFFs: 74, Gates: 657, Seed: 1423},
	{Name: "s5378", Inputs: 35, Outputs: 49, DFFs: 179, Gates: 1500, Seed: 5378},
	{Name: "s13207", Inputs: 31, Outputs: 121, DFFs: 669, Gates: 2400, Seed: 13207},
	{Name: "s15850", Inputs: 14, Outputs: 87, DFFs: 597, Gates: 2600, Seed: 15850},
}

// StandardProfiles returns the six stand-in profiles (copies).
func StandardProfiles() []Profile {
	return append([]Profile(nil), standard...)
}

// ProfileByName looks up a standard profile by circuit name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range standard {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Generate builds the synthetic circuit for the profile. The result is
// deterministic in the profile (including its seed), finalized, and has
// exactly the requested numbers of inputs, outputs and flip-flops.
func Generate(p Profile) (*netlist.Circuit, error) {
	return GenerateObserved(p, nil)
}

// GenerateObserved is Generate with generation statistics reported through
// an observability collector: a "bench89.generate" span, gate/circuit
// counters, a cone-budget histogram, and a "bench89.generated" event with
// the realized structure. A nil collector is exactly Generate.
func GenerateObserved(p Profile, col *obs.Collector) (*netlist.Circuit, error) {
	if p.Inputs <= 0 || p.Outputs <= 0 || p.Gates <= 0 || p.DFFs < 0 {
		return nil, fmt.Errorf("bench89: invalid profile %+v", p)
	}
	if p.Gates < p.Outputs {
		return nil, fmt.Errorf("bench89: profile %s needs at least %d gates for its outputs", p.Name, p.Outputs)
	}
	span := col.StartSpan("bench89.generate")
	hCone := col.Histogram("bench89.cone.budget", obs.ExpBounds(1, 2, 13)...)
	rng := rand.New(rand.NewSource(p.Seed))
	var b strings.Builder

	// Sources: primary inputs and flip-flop outputs (forward-referenced).
	sources := make([]string, 0, p.Inputs+p.DFFs)
	for i := 0; i < p.Inputs; i++ {
		name := fmt.Sprintf("i%d", i)
		fmt.Fprintf(&b, "INPUT(%s)\n", name)
		sources = append(sources, name)
	}
	for i := 0; i < p.DFFs; i++ {
		sources = append(sources, fmt.Sprintf("ff%d", i))
	}

	// The circuit is built as one logic cone per sink (primary output or
	// flip-flop data input), the way ATPG sees a design. Each cone is a
	// mostly-tree random network over a varying number of support signals,
	// with a limited fraction of leaves drawn from previously built cones
	// (creating fanout, sharing and mild reconvergence). Tree-dominated
	// cones keep the logic realistically testable — a flat random DAG
	// saturates with reconvergent masking and untestable faults — while
	// the varying cone widths produce the per-cone pattern-count variation
	// that the paper's whole analysis is about.
	//
	// Gate types are chosen probability-aware: the generator tracks an
	// (independence-approximated) signal probability per net and picks
	// the type keeping the output closest to 1/2, randomly perturbed.
	gateNames := make([]string, 0, p.Gates+p.Gates/4)
	prob := make(map[string]float64, p.Gates+len(sources))
	for _, s := range sources {
		prob[s] = 0.5
	}
	gateCount := 0
	newGate := func(typ string, fanin []string, outProb float64) string {
		name := fmt.Sprintf("g%d", gateCount)
		gateCount++
		fmt.Fprintf(&b, "%s = %s(%s)\n", name, typ, strings.Join(fanin, ", "))
		gateNames = append(gateNames, name)
		prob[name] = outProb
		return name
	}
	combine := func(x, y string) string {
		px, py := prob[x], prob[y]
		type cand struct {
			typ string
			out float64
		}
		cands := []cand{
			{"AND", px * py},
			{"NAND", 1 - px*py},
			{"OR", 1 - (1-px)*(1-py)},
			{"NOR", (1 - px) * (1 - py)},
			{"XOR", px*(1-py) + py*(1-px)},
		}
		best, bestScore := cands[0], 2.0
		for _, c := range cands {
			if score := abs(c.out-0.5) + 0.10*rng.Float64(); score < bestScore {
				bestScore, best = score, c
			}
		}
		return newGate(best.typ, []string{x, y}, best.out)
	}

	sinks := p.Outputs + p.DFFs
	// Allocate the gate budget over sinks with a skewed (roughly
	// geometric) weight so cone sizes vary widely.
	weights := make([]float64, sinks)
	var wsum float64
	for i := range weights {
		weights[i] = 0.25 + rng.ExpFloat64()
		wsum += weights[i]
	}
	buildCone := func(budget int) string {
		// Leaves: mostly fresh sources, some cross-links into earlier
		// cones. A binary tree over k leaves uses k-1 combine gates.
		k := budget
		if k < 1 {
			k = 1
		}
		leaves := make([]string, 0, k+1)
		for len(leaves) < k+1 {
			if len(gateNames) > 0 && rng.Float64() < 0.18 {
				leaves = append(leaves, gateNames[rng.Intn(len(gateNames))])
			} else {
				leaves = append(leaves, sources[rng.Intn(len(sources))])
			}
		}
		roots := leaves
		for len(roots) > 1 {
			// Occasionally fold several signals into one wide gate. Wide
			// AND/NOR gates produce low-probability internal signals whose
			// faults need near-unique patterns — the "hard-to-test logic
			// cone" of the paper's Section 3 that drives up pattern counts.
			if len(roots) >= 5 && rng.Float64() < 0.08 {
				m := 3 + rng.Intn(4)
				if m > len(roots)-1 {
					m = len(roots) - 1
				}
				wide := make([]string, 0, m)
				pAll, qAll := 1.0, 1.0
				for n := 0; n < m; n++ {
					idx := rng.Intn(len(roots))
					w := roots[idx]
					roots[idx] = roots[len(roots)-1]
					roots = roots[:len(roots)-1]
					wide = append(wide, w)
					pAll *= prob[w]
					qAll *= 1 - prob[w]
				}
				var g string
				if rng.Intn(2) == 0 {
					g = newGate("AND", wide, pAll)
				} else {
					g = newGate("NOR", wide, qAll)
				}
				roots = append(roots, g)
				continue
			}
			i := rng.Intn(len(roots))
			j := rng.Intn(len(roots) - 1)
			if j >= i {
				j++
			}
			merged := combine(roots[i], roots[j])
			// Occasionally insert an inverter for structural variety.
			if rng.Float64() < 0.10 {
				merged = newGate("NOT", []string{merged}, 1-prob[merged])
			}
			// Replace i, delete j.
			roots[i] = merged
			roots[j] = roots[len(roots)-1]
			roots = roots[:len(roots)-1]
		}
		return roots[0]
	}

	sinkRoots := make([]string, sinks)
	for i := 0; i < sinks; i++ {
		budget := int(float64(p.Gates) * weights[i] / wsum)
		hCone.ObserveInt(budget)
		sinkRoots[i] = buildCone(budget)
	}

	for i := 0; i < p.Outputs; i++ {
		fmt.Fprintf(&b, "OUTPUT(%s)\n", sinkRoots[i])
	}
	for i := 0; i < p.DFFs; i++ {
		fmt.Fprintf(&b, "ff%d = DFF(%s)\n", i, sinkRoots[p.Outputs+i])
	}

	c, err := netlist.ParseBenchString(p.Name, b.String())
	if err != nil {
		return nil, fmt.Errorf("bench89: generating %s: %w", p.Name, err)
	}
	col.Counter("bench89.circuits.generated").Inc()
	col.Counter("bench89.gates.generated").Add(int64(gateCount))
	if col.Tracing() {
		col.Emit("bench89.generated",
			obs.F("name", p.Name),
			obs.F("seed", p.Seed),
			obs.F("inputs", p.Inputs),
			obs.F("outputs", p.Outputs),
			obs.F("dffs", p.DFFs),
			obs.F("gates", gateCount),
			obs.F("cones", sinks))
	}
	span.End()
	return c, nil
}

// MustGenerate is Generate for known-good profiles; it panics on error.
// It is intended for tests and examples with hard-coded profiles —
// anything handling external or computed profiles must call Generate and
// propagate the error instead.
func MustGenerate(p Profile) *netlist.Circuit {
	c, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return c
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
