// Package core implements the paper's primary contribution: the test data
// volume (TDV) formulation of Section 4 comparing monolithic testing of a
// flattened SOC against modular, wrapper-isolated core-by-core testing.
//
// Equation numbering follows the paper:
//
//	(1) TDV_mono     = (I_chip + O_chip + 2B_chip + 2S_chip) · T_mono
//	(2) T_mono      ≥ max_i T_i                         (validated empirically)
//	(3) TDV_mono^opt = (I_chip + O_chip + 2B_chip + 2S_chip) · max_i T_i
//	(4) TDV_modular  = Σ_P T_P · (2S_P + ISOCOST_P)
//	(5) ISOCOST_P    = I_P + O_P + 2B_P + Σ_{C ∈ Child(P)} (I_C + O_C + 2B_C)
//	(6) TDV_modular  = TDV_mono + TDV_penalty − TDV_benefit − chip-port term
//	(7) TDV_penalty  = Σ_A T_A · ISOCOST_A
//	(8) TDV_benefit  = Σ_A (T_mono − T_A) · 2S_A
//
// Note on (6): expanding (1), (4), (7) and (8) shows the exact identity is
//
//	TDV_modular = TDV_mono + TDV_penalty − TDV_benefit
//	              − (I_chip + O_chip + 2B_chip) · T_mono
//
// The final term is the chip-level port data that the monolithic test pays
// on every one of its T_mono patterns, while the modular test pays chip
// ports only T_top times inside ISOCOST of the top module. The paper states
// (6) without this term; its Table 4 numbers absorb it into the printed
// penalty/benefit columns. This package computes all quantities from first
// principles and exposes the correction term explicitly. See EXPERIMENTS.md
// for the quantitative comparison.
package core

import (
	"fmt"
	"math"
)

// Params are the test parameters of one module: port counts, internal scan
// cells, and test pattern count.
type Params struct {
	Inputs    int
	Outputs   int
	Bidirs    int
	ScanCells int
	Patterns  int
}

// PortBits returns I + O + 2B: the per-pattern data on the module's
// terminals (each bidir needs one stimulus and one response bit).
func (p Params) PortBits() int64 {
	return int64(p.Inputs) + int64(p.Outputs) + 2*int64(p.Bidirs)
}

// Module is one core (or the SOC top level) with its direct children; the
// hierarchy mirrors the SOC design tree (paper Figure 3).
type Module struct {
	Name string
	Params
	Children []*Module
	// ScanChains optionally lists the module's internal scan-chain lengths
	// (the ITC'02 benchmark files publish these per core). When present,
	// their sum must equal ScanCells — the TDV formulas consume only the
	// total, but the per-chain breakdown feeds wrapper/TAM design and is
	// cross-checked by the SOC linter (rule SOC008).
	ScanChains []int
	// PortsTesterAccessible marks a module whose own terminals are chip
	// pins driven directly by the tester, so they carry no dedicated
	// wrapper cells and contribute nothing to ISOCOST (only the child
	// terms of Equation 5 remain). The paper's SOC1/SOC2 top-level logic
	// (Tables 1-2) is accounted this way; the ITC'02 computation
	// (Table 3) instead wraps the top module's ports like any core.
	PortsTesterAccessible bool
}

// Flatten returns the module and all its descendants in pre-order.
func (m *Module) Flatten() []*Module {
	out := []*Module{m}
	for _, ch := range m.Children {
		out = append(out, ch.Flatten()...)
	}
	return out
}

// ScanChainSum returns the total length of the declared scan chains, or 0
// when the module does not publish a per-chain breakdown.
func (m *Module) ScanChainSum() int {
	n := 0
	for _, l := range m.ScanChains {
		n += l
	}
	return n
}

// ISOCost computes Equation 5 for the module: its own port bits plus the
// port bits of its direct children (tested in ExTest while the parent is in
// InTest). A module with PortsTesterAccessible set contributes only the
// child terms.
func (m *Module) ISOCost() int64 {
	var n int64
	if !m.PortsTesterAccessible {
		n = m.PortBits()
	}
	for _, ch := range m.Children {
		n += ch.PortBits()
	}
	return n
}

// ModularTDV computes the module's own term of Equation 4:
// T_P · (2S_P + ISOCOST_P).
func (m *Module) ModularTDV() int64 {
	return int64(m.Patterns) * (2*int64(m.ScanCells) + m.ISOCost())
}

// SOC is a complete SOC profile: the top-level module (whose own Params
// describe the chip-level ports and top-level glue logic) plus, optionally,
// a measured monolithic pattern count.
type SOC struct {
	Name string
	// Top is the top-level module; Top.Params holds the chip ports, the
	// top-level glue scan cells and glue pattern count, and Top.Children
	// the first-level cores.
	Top *Module
	// TMono is the measured pattern count of the flattened monolithic
	// design, when an actual monolithic ATPG run is available (Tables 1-2);
	// zero when only the optimistic bound of Equation 3 applies (Table 4).
	TMono int
}

// Modules returns all modules including the top, in pre-order.
func (s *SOC) Modules() []*Module { return s.Top.Flatten() }

// TotalScanCells returns S_chip: the scan cells summed over all modules.
func (s *SOC) TotalScanCells() int64 {
	var n int64
	for _, m := range s.Modules() {
		n += int64(m.ScanCells)
	}
	return n
}

// MaxPatterns returns max_i T_i over all modules.
func (s *SOC) MaxPatterns() int {
	max := 0
	for _, m := range s.Modules() {
		if m.Patterns > max {
			max = m.Patterns
		}
	}
	return max
}

// PatternCounts returns every module's pattern count, in pre-order.
func (s *SOC) PatternCounts() []int {
	var ts []int
	for _, m := range s.Modules() {
		ts = append(ts, m.Patterns)
	}
	return ts
}

// NormStdevPatterns returns the normalized sample standard deviation
// (stdev/mean with the n−1 divisor) of the module pattern counts — the
// paper's Table 4 column 3 statistic. Modules without a test of their own
// (T == 0, e.g. pure container levels) are excluded, mirroring the paper's
// restriction to core tests with TamUse=1 and ScanUse=1.
func (s *SOC) NormStdevPatterns() float64 {
	var ts []int
	for _, t := range s.PatternCounts() {
		if t > 0 {
			ts = append(ts, t)
		}
	}
	if len(ts) < 2 {
		return 0
	}
	var sum float64
	for _, t := range ts {
		sum += float64(t)
	}
	mean := sum / float64(len(ts))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, t := range ts {
		d := float64(t) - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(ts)-1)) / mean
}

// chipFrameBits returns I_chip + O_chip + 2B_chip + 2S_chip: the per-pattern
// data of the flattened monolithic design.
func (s *SOC) chipFrameBits() int64 {
	return s.Top.PortBits() + 2*s.TotalScanCells()
}

// TDVMono computes Equation 1 with the measured monolithic pattern count.
// It returns 0 if TMono is unset.
func (s *SOC) TDVMono() int64 {
	if s.TMono <= 0 {
		return 0
	}
	return s.chipFrameBits() * int64(s.TMono)
}

// TDVMonoOpt computes Equation 3: the optimistic (lower-bound) monolithic
// TDV using max_i T_i for the pattern count.
func (s *SOC) TDVMonoOpt() int64 {
	return s.chipFrameBits() * int64(s.MaxPatterns())
}

// TDVModular computes Equation 4 over all modules.
func (s *SOC) TDVModular() int64 {
	var n int64
	for _, m := range s.Modules() {
		n += m.ModularTDV()
	}
	return n
}

// Penalty computes Equation 7: the per-pattern wrapper isolation data
// summed over all modules.
func (s *SOC) Penalty() int64 {
	var n int64
	for _, m := range s.Modules() {
		n += int64(m.Patterns) * m.ISOCost()
	}
	return n
}

// Benefit computes Equation 8 against the given monolithic pattern count:
// Σ (T_mono − T_A) · 2S_A. Every term is guaranteed non-negative when
// tmono ≥ max_i T_i (Equation 2); Benefit panics if the guarantee is
// violated, as that indicates inconsistent inputs.
func (s *SOC) Benefit(tmono int) int64 {
	var n int64
	for _, m := range s.Modules() {
		if m.Patterns > tmono {
			panic(fmt.Sprintf("core: module %s has T=%d > T_mono=%d, violating Eq. 2",
				m.Name, m.Patterns, tmono))
		}
		n += int64(tmono-m.Patterns) * 2 * int64(m.ScanCells)
	}
	return n
}

// ChipPortTerm returns (I_chip + O_chip + 2B_chip) · tmono — the correction
// term of the exact Equation 6 identity (see the package comment).
func (s *SOC) ChipPortTerm(tmono int) int64 {
	return s.Top.PortBits() * int64(tmono)
}

// Report is the complete monolithic-vs-modular comparison for one SOC.
type Report struct {
	Name       string
	NumModules int // all modules including the top
	NumCores   int // modules excluding the top (the paper's "Cores" column)
	TMax       int
	TMono      int // 0 when unmeasured
	NormStdev  float64
	SumScan    int64
	TDVMonoOpt int64
	TDVMonoAct int64 // 0 when unmeasured
	TDVModular int64
	Penalty    int64
	Benefit    int64 // against TMono when measured, else against TMax
	ChipPort   int64 // correction term, against the same pattern count
	// ReductionVsOpt is the TDV change of modular vs optimistic monolithic:
	// negative = reduction (paper Table 4 rightmost column).
	ReductionVsOpt float64
	// PenaltyPctVsOpt and BenefitPctVsOpt express penalty/benefit relative
	// to TDVMonoOpt (paper Table 4 columns 5-6).
	PenaltyPctVsOpt float64
	BenefitPctVsOpt float64
	// RatioVsActual is TDV_mono / TDV_modular when TMono is measured
	// (2.87 and 2.22 for the paper's SOC1/SOC2).
	RatioVsActual float64
	// RatioVsOpt is TDV_mono_opt / TDV_modular (the pessimistic ratio;
	// 1.13 and 1.06 in the paper).
	RatioVsOpt float64
	// PessimismFactor is RatioVsActual / RatioVsOpt (2.5x, 2.1x in the
	// paper), zero when TMono is unmeasured.
	PessimismFactor float64
}

// Analyze produces the full comparison report for the SOC.
func (s *SOC) Analyze() Report {
	r := Report{
		Name:       s.Name,
		NumModules: len(s.Modules()),
		TMax:       s.MaxPatterns(),
		TMono:      s.TMono,
		NormStdev:  s.NormStdevPatterns(),
		SumScan:    s.TotalScanCells(),
		TDVMonoOpt: s.TDVMonoOpt(),
		TDVModular: s.TDVModular(),
		Penalty:    s.Penalty(),
	}
	r.NumCores = r.NumModules - 1
	ref := r.TMax
	if s.TMono > 0 {
		ref = s.TMono
		r.TDVMonoAct = s.TDVMono()
	}
	r.Benefit = s.Benefit(ref)
	r.ChipPort = s.ChipPortTerm(ref)
	if r.TDVMonoOpt > 0 {
		r.ReductionVsOpt = float64(r.TDVModular-r.TDVMonoOpt) / float64(r.TDVMonoOpt)
		r.PenaltyPctVsOpt = float64(r.Penalty) / float64(r.TDVMonoOpt)
		r.BenefitPctVsOpt = float64(r.Benefit) / float64(r.TDVMonoOpt)
	}
	if r.TDVModular > 0 {
		r.RatioVsOpt = float64(r.TDVMonoOpt) / float64(r.TDVModular)
		if r.TDVMonoAct > 0 {
			r.RatioVsActual = float64(r.TDVMonoAct) / float64(r.TDVModular)
		}
	}
	if r.RatioVsOpt > 0 && r.RatioVsActual > 0 {
		r.PessimismFactor = r.RatioVsActual / r.RatioVsOpt
	}
	return r
}

// VerifyIdentity checks the exact Equation 6 identity at the given
// monolithic pattern count:
//
//	TDV_modular == TDV_mono(t) + Penalty − Benefit(t) − ChipPortTerm(t)
//
// It returns an error with the two sides if the identity does not hold
// (which would indicate an implementation bug, as the identity is
// algebraic).
func (s *SOC) VerifyIdentity(tmono int) error {
	lhs := s.TDVModular()
	mono := s.chipFrameBits() * int64(tmono)
	rhs := mono + s.Penalty() - s.Benefit(tmono) - s.ChipPortTerm(tmono)
	if lhs != rhs {
		return fmt.Errorf("core: Eq.6 identity broken: modular=%d, mono+pen-ben-chip=%d", lhs, rhs)
	}
	return nil
}
