package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// soc1 builds the paper's SOC1 profile (Table 1) directly in this package
// to keep the equation tests free of higher-level dependencies.
func soc1() *SOC {
	return &SOC{
		Name: "SOC1",
		Top: &Module{
			Name:                  "Top",
			Params:                Params{Inputs: 51, Outputs: 10, Patterns: 2},
			PortsTesterAccessible: true,
			Children: []*Module{
				{Name: "s713", Params: Params{Inputs: 35, Outputs: 23, ScanCells: 19, Patterns: 52}},
				{Name: "s953", Params: Params{Inputs: 16, Outputs: 23, ScanCells: 29, Patterns: 85}},
				{Name: "s1423a", Params: Params{Inputs: 17, Outputs: 5, ScanCells: 74, Patterns: 62}},
				{Name: "s1423b", Params: Params{Inputs: 17, Outputs: 5, ScanCells: 74, Patterns: 62}},
				{Name: "s1423c", Params: Params{Inputs: 17, Outputs: 5, ScanCells: 74, Patterns: 62}},
			},
		},
		TMono: 216,
	}
}

func soc2() *SOC {
	return &SOC{
		Name: "SOC2",
		Top: &Module{
			Name:                  "Top",
			Params:                Params{Inputs: 14, Outputs: 198, Patterns: 2},
			PortsTesterAccessible: true,
			Children: []*Module{
				{Name: "s953", Params: Params{Inputs: 16, Outputs: 23, ScanCells: 29, Patterns: 85}},
				{Name: "s5378", Params: Params{Inputs: 35, Outputs: 49, ScanCells: 179, Patterns: 244}},
				{Name: "s13207", Params: Params{Inputs: 31, Outputs: 121, ScanCells: 669, Patterns: 452}},
				{Name: "s15850", Params: Params{Inputs: 14, Outputs: 87, ScanCells: 597, Patterns: 428}},
			},
		},
		TMono: 945,
	}
}

func TestTable1PerCoreTDV(t *testing.T) {
	s := soc1()
	want := map[string]int64{
		"Top":    326,
		"s713":   4992,
		"s953":   8245,
		"s1423a": 10540,
		"s1423b": 10540,
		"s1423c": 10540,
	}
	for _, m := range s.Modules() {
		if got := m.ModularTDV(); got != want[m.Name] {
			t.Errorf("%s: modular TDV = %d, want %d", m.Name, got, want[m.Name])
		}
	}
	if got := s.TDVModular(); got != 45183 {
		t.Errorf("SOC1 modular TDV = %d, want 45183", got)
	}
}

func TestTable1MonolithicAndRatios(t *testing.T) {
	s := soc1()
	if got := s.TotalScanCells(); got != 270 {
		t.Errorf("S_chip = %d, want 270", got)
	}
	if got := s.TDVMono(); got != 129816 {
		t.Errorf("TDV_mono = %d, want 129816", got)
	}
	if got := s.MaxPatterns(); got != 85 {
		t.Errorf("T_max = %d, want 85", got)
	}
	if got := s.TDVMonoOpt(); got != 51085 {
		t.Errorf("TDV_mono_opt = %d, want 51085", got)
	}
	r := s.Analyze()
	if math.Abs(r.RatioVsActual-2.87) > 0.005 {
		t.Errorf("reduction ratio = %.3f, want 2.87", r.RatioVsActual)
	}
	if math.Abs(r.RatioVsOpt-1.13) > 0.005 {
		t.Errorf("pessimistic ratio = %.3f, want 1.13", r.RatioVsOpt)
	}
	if math.Abs(r.PessimismFactor-2.5) > 0.05 {
		t.Errorf("pessimism factor = %.2f, want ~2.5", r.PessimismFactor)
	}
	if r.NumCores != 5 || r.NumModules != 6 {
		t.Errorf("core counts: %d cores / %d modules", r.NumCores, r.NumModules)
	}
}

func TestTable1PenaltyBenefitIdentity(t *testing.T) {
	s := soc1()
	// First-principles Eq. 7/8 values (the paper's printed 10,627/95,260
	// absorb the chip-port correction; see package comment and
	// EXPERIMENTS.md).
	if got := s.Penalty(); got != 10749 {
		t.Errorf("penalty = %d, want 10749", got)
	}
	if got := s.Benefit(216); got != 82206 {
		t.Errorf("benefit = %d, want 82206", got)
	}
	if got := s.ChipPortTerm(216); got != 61*216 {
		t.Errorf("chip port term = %d", got)
	}
	if err := s.VerifyIdentity(216); err != nil {
		t.Error(err)
	}
	// The paper's printed penalty − benefit equals ours minus the chip
	// term: both decompositions yield the same TDV_modular.
	paperNet := int64(10627 - 95260)
	ourNet := s.Penalty() - s.Benefit(216) - s.ChipPortTerm(216)
	if paperNet != ourNet {
		t.Errorf("net penalty-benefit: paper %d, ours %d", paperNet, ourNet)
	}
}

func TestTable2Values(t *testing.T) {
	s := soc2()
	want := map[string]int64{
		"Top":    752,
		"s953":   8245,
		"s5378":  107848,
		"s13207": 673480,
		"s15850": 554260,
	}
	for _, m := range s.Modules() {
		if got := m.ModularTDV(); got != want[m.Name] {
			t.Errorf("%s: modular TDV = %d, want %d", m.Name, got, want[m.Name])
		}
	}
	if got := s.TDVModular(); got != 1344585 {
		t.Errorf("SOC2 modular TDV = %d, want 1344585", got)
	}
	if got := s.TDVMono(); got != 2986200 {
		t.Errorf("TDV_mono = %d, want 2986200", got)
	}
	if got := s.TDVMonoOpt(); got != 1428320 {
		t.Errorf("TDV_mono_opt = %d, want 1428320", got)
	}
	r := s.Analyze()
	if math.Abs(r.RatioVsActual-2.22) > 0.005 {
		t.Errorf("reduction ratio = %.3f, want 2.22", r.RatioVsActual)
	}
	if math.Abs(r.RatioVsOpt-1.06) > 0.005 {
		t.Errorf("pessimistic ratio = %.3f, want 1.06", r.RatioVsOpt)
	}
	if math.Abs(r.PessimismFactor-2.1) > 0.05 {
		t.Errorf("pessimism factor = %.2f, want ~2.1", r.PessimismFactor)
	}
	if err := s.VerifyIdentity(945); err != nil {
		t.Error(err)
	}
	// Paper's printed net decomposition matches ours after the chip-port
	// correction: 97,701 − 1,739,316 == Pen − Ben − ChipPort.
	if int64(97701-1739316) != s.Penalty()-s.Benefit(945)-s.ChipPortTerm(945) {
		t.Error("SOC2 net penalty-benefit decomposition mismatch")
	}
}

func TestHierarchicalISOCost(t *testing.T) {
	// p34392 Core 2 (Table 3): I=165 O=263 S=8856 T=514, children 3..9.
	core2 := &Module{
		Name:   "Core2",
		Params: Params{Inputs: 165, Outputs: 263, ScanCells: 8856, Patterns: 514},
		Children: []*Module{
			{Params: Params{Inputs: 37, Outputs: 25, Patterns: 3108}},
			{Params: Params{Inputs: 38, Outputs: 25, Patterns: 6180}},
			{Params: Params{Inputs: 62, Outputs: 25, Patterns: 12336}},
			{Params: Params{Inputs: 11, Outputs: 8, Patterns: 1965}},
			{Params: Params{Inputs: 9, Outputs: 8, Patterns: 512}},
			{Params: Params{Inputs: 46, Outputs: 17, Patterns: 9930}},
			{Params: Params{Inputs: 41, Outputs: 33, Patterns: 228}},
		},
	}
	if got := core2.ISOCost(); got != 813 {
		t.Errorf("ISOCOST(Core2) = %d, want 813", got)
	}
	if got := core2.ModularTDV(); got != 9521850 {
		t.Errorf("TDV(Core2) = %d, want 9521850 (Table 3)", got)
	}
}

func TestBidirsCountTwice(t *testing.T) {
	p := Params{Inputs: 3, Outputs: 2, Bidirs: 4}
	if got := p.PortBits(); got != 13 {
		t.Errorf("PortBits = %d, want 13", got)
	}
}

func TestNormStdevMatchesPaper(t *testing.T) {
	// g12710's published pattern counts: 852, 1314, 1223, 1223 -> 0.18
	// (with the sample n-1 divisor).
	s := &SOC{Name: "g12710-like", Top: &Module{
		Params: Params{Patterns: 852},
		Children: []*Module{
			{Params: Params{Patterns: 1314}},
			{Params: Params{Patterns: 1223}},
			{Params: Params{Patterns: 1223}},
		},
	}}
	if got := s.NormStdevPatterns(); math.Abs(got-0.18) > 0.005 {
		t.Errorf("norm stdev = %.3f, want 0.18", got)
	}
}

func TestNormStdevEdgeCases(t *testing.T) {
	single := &SOC{Top: &Module{Params: Params{Patterns: 7}}}
	if single.NormStdevPatterns() != 0 {
		t.Error("single-module stdev must be 0")
	}
	zeros := &SOC{Top: &Module{Children: []*Module{{}, {}}}}
	if zeros.NormStdevPatterns() != 0 {
		t.Error("zero-mean stdev must be 0")
	}
}

func TestBenefitPanicsOnEq2Violation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Benefit with T > T_mono did not panic")
		}
	}()
	s := soc1()
	s.Benefit(10) // far below max core pattern count 85
}

func TestTDVMonoUnmeasured(t *testing.T) {
	s := soc1()
	s.TMono = 0
	if s.TDVMono() != 0 {
		t.Error("TDVMono must be 0 when unmeasured")
	}
	r := s.Analyze()
	if r.TDVMonoAct != 0 || r.RatioVsActual != 0 || r.PessimismFactor != 0 {
		t.Error("unmeasured analysis must zero the actual-based fields")
	}
	// Benefit then references T_max.
	if r.Benefit != s.Benefit(s.MaxPatterns()) {
		t.Error("benefit must use T_max when unmeasured")
	}
}

// Property: the Equation 6 identity holds for every consistent random SOC
// and every t >= T_max.
func TestIdentityProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		top := &Module{
			Name:   "top",
			Params: Params{Inputs: r.Intn(100), Outputs: r.Intn(100), Bidirs: r.Intn(20), ScanCells: r.Intn(50), Patterns: 1 + r.Intn(50)},
		}
		n := 1 + r.Intn(8)
		for i := 0; i < n; i++ {
			ch := &Module{Params: Params{
				Inputs: r.Intn(200), Outputs: r.Intn(200), Bidirs: r.Intn(30),
				ScanCells: r.Intn(5000), Patterns: 1 + r.Intn(10000),
			}}
			// Occasionally add grandchildren.
			for j := 0; j < r.Intn(3); j++ {
				ch.Children = append(ch.Children, &Module{Params: Params{
					Inputs: r.Intn(100), Outputs: r.Intn(100), Patterns: 1 + r.Intn(8000),
				}})
			}
			top.Children = append(top.Children, ch)
		}
		s := &SOC{Name: "rand", Top: top}
		t1 := s.MaxPatterns()
		t2 := t1 + r.Intn(1000)
		return s.VerifyIdentity(t1) == nil && s.VerifyIdentity(t2) == nil
	}, cfg); err != nil {
		t.Error(err)
	}
}

// Property: modular TDV decomposes as Σ 2S·T plus the penalty.
func TestModularDecompositionProperty(t *testing.T) {
	s := soc2()
	var scanPart int64
	for _, m := range s.Modules() {
		scanPart += 2 * int64(m.ScanCells) * int64(m.Patterns)
	}
	if s.TDVModular() != scanPart+s.Penalty() {
		t.Error("TDV_modular != Σ2S·T + penalty")
	}
}

func TestFlattenPreOrder(t *testing.T) {
	s := soc1()
	mods := s.Modules()
	if len(mods) != 6 || mods[0].Name != "Top" || mods[1].Name != "s713" {
		t.Errorf("pre-order wrong: %v", mods[0].Name)
	}
}
