package faultsim

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// oracleCircuits collects every differential-oracle subject: the testdata
// benches plus the two inline netlists the engine tests already use. Only
// circuits narrow enough to brute-force are returned.
func oracleCircuits(t *testing.T) map[string]*netlist.Circuit {
	t.Helper()
	out := map[string]*netlist.Circuit{
		"c17-inline": mustParse(t, "c17-inline", c17Bench),
		"seq-inline": mustParse(t, "seq-inline", seqBench),
	}
	paths, err := filepath.Glob(filepath.Join("..", "netlist", "testdata", "*.bench"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no testdata benches found")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(p), ".bench")
		c, err := netlist.ParseBenchString(name, string(data))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if w := len(c.PseudoInputs()); w > MaxOracleInputs {
			t.Logf("skipping %s: %d pseudo inputs > %d", name, w, MaxOracleInputs)
			continue
		}
		out[name] = c
	}
	return out
}

func TestAllPatternsEnumeration(t *testing.T) {
	ps := AllPatterns(3)
	if len(ps) != 8 {
		t.Fatalf("AllPatterns(3) returned %d patterns", len(ps))
	}
	seen := map[string]bool{}
	for k, p := range ps {
		if len(p) != 3 {
			t.Fatalf("pattern %d width %d", k, len(p))
		}
		for j := 0; j < 3; j++ {
			want := logic.FromBool(k&(1<<uint(j)) != 0)
			if p[j] != want {
				t.Fatalf("pattern %d position %d = %v, want %v", k, j, p[j], want)
			}
		}
		seen[p.String()] = true
	}
	if len(seen) != 8 {
		t.Fatalf("patterns not distinct: %d unique", len(seen))
	}
}

// TestOracleDifferentialExhaustive is the brute-force cross-check: for
// every testdata circuit, every collapsed fault, and ALL 2^w patterns, the
// bit-parallel engine — serial and sharded at several worker counts — must
// report the identical first-detection table the exhaustive oracle computes.
func TestOracleDifferentialExhaustive(t *testing.T) {
	old := minShardFaults
	minShardFaults = 1 // force even tiny fault lists through the sharded path
	defer func() { minShardFaults = old }()

	for name, c := range oracleCircuits(t) {
		t.Run(name, func(t *testing.T) {
			flist := faults.CollapsedUniverse(c)
			patterns := AllPatterns(len(c.PseudoInputs()))
			want := NewOracle(c).Simulate(patterns, flist)
			for _, w := range []int{1, 2, 3, 8} {
				got := SimulateWorkers(c, patterns, flist, w)
				if got.NumDetected != want.NumDetected {
					t.Fatalf("workers=%d: NumDetected %d, oracle %d", w, got.NumDetected, want.NumDetected)
				}
				for fi := range flist {
					if got.DetectedBy[fi] != want.DetectedBy[fi] {
						t.Fatalf("workers=%d fault %s: engine DetectedBy %d, oracle %d",
							w, flist[fi].String(c), got.DetectedBy[fi], want.DetectedBy[fi])
					}
				}
			}
		})
	}
}

// TestOracleAgainstSerialReference pits the third implementation against
// the second: the recursive memoized single-pattern reference must agree
// with the exhaustive oracle on every (fault, pattern) pair of the
// testdata circuits.
func TestOracleAgainstSerialReference(t *testing.T) {
	for name, c := range oracleCircuits(t) {
		t.Run(name, func(t *testing.T) {
			flist := faults.CollapsedUniverse(c)
			patterns := AllPatterns(len(c.PseudoInputs()))
			o := NewOracle(c)
			for _, f := range flist {
				for _, p := range patterns {
					if got, want := SerialDetects(c, p, f), o.Detects(p, f); got != want {
						t.Fatalf("fault %s pattern %v: SerialDetects %v, oracle %v",
							f.String(c), p, got, want)
					}
				}
			}
		})
	}
}

// TestOracleRandomCircuits extends the differential check beyond the
// curated netlists: random multi-level circuits, exhaustive patterns,
// engine (sharded) vs oracle.
func TestOracleRandomCircuits(t *testing.T) {
	old := minShardFaults
	minShardFaults = 1
	defer func() { minShardFaults = old }()

	r := rand.New(rand.NewSource(0x5eed))
	for trial := 0; trial < 8; trial++ {
		nIn := 3 + r.Intn(6)
		c := randomCircuit(t, r, nIn, 10+r.Intn(25), 2, r.Intn(3))
		flist := faults.CollapsedUniverse(c)
		patterns := AllPatterns(len(c.PseudoInputs()))
		want := NewOracle(c).Simulate(patterns, flist)
		got := SimulateWorkers(c, patterns, flist, 4)
		for fi := range flist {
			if got.DetectedBy[fi] != want.DetectedBy[fi] {
				t.Fatalf("trial %d fault %s: engine DetectedBy %d, oracle %d",
					trial, flist[fi].String(c), got.DetectedBy[fi], want.DetectedBy[fi])
			}
		}
	}
}
