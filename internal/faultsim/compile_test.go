package faultsim

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// TestCompiledOpsMatchEvalGateWord pits every compiled opcode against the
// independent word-wide gate evaluator in package sim, over random fanin
// words at the arities the compiler specializes (1, 2 and N).
func TestCompiledOpsMatchEvalGateWord(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	cases := []struct {
		typ   netlist.GateType
		arity int
	}{
		{netlist.Buf, 1}, {netlist.Not, 1},
		{netlist.And, 2}, {netlist.Nand, 2}, {netlist.Or, 2}, {netlist.Nor, 2},
		{netlist.Xor, 2}, {netlist.Xnor, 2},
		{netlist.And, 3}, {netlist.Nand, 4}, {netlist.Or, 5}, {netlist.Nor, 3},
		{netlist.Xor, 4}, {netlist.Xnor, 3},
		{netlist.Const0, 0}, {netlist.Const1, 0},
	}
	for _, tc := range cases {
		c := netlist.New("ops")
		fanin := make([]netlist.GateID, tc.arity)
		for i := range fanin {
			fanin[i] = c.MustAddGate(gname("in", i), netlist.Input)
		}
		id := c.MustAddGate("g", tc.typ, fanin...)
		if err := c.MarkOutput(id); err != nil {
			t.Fatal(err)
		}
		if err := c.Finalize(); err != nil {
			t.Fatal(err)
		}
		p := Compile(c)
		for trial := 0; trial < 50; trial++ {
			in := make([]uint64, tc.arity)
			for i := range in {
				in[i] = r.Uint64()
			}
			got := p.evalWords(int32(id), in)
			want := sim.EvalGateWord(tc.typ, in)
			if got != want {
				t.Fatalf("%v/%d: compiled %x, EvalGateWord %x (in=%x)", tc.typ, tc.arity, got, want, in)
			}
		}
	}
}

// TestProgramRunMatchesPSim checks the compiled good-circuit pass against
// the original PSim on fixtures and random netlists: every gate's value
// word must agree on the valid pattern bits, for full and partial batches.
func TestProgramRunMatchesPSim(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	circuits := []*netlist.Circuit{
		mustParse(t, "c17", c17Bench),
		mustParse(t, "seq", seqBench),
		randomCircuit(t, r, 6, 40, 3, 2),
		randomCircuit(t, r, 10, 120, 5, 8),
	}
	for _, c := range circuits {
		p := Compile(c)
		ps := sim.NewPSim(c)
		words := make([]uint64, c.NumGates())
		for _, n := range []int{1, 7, 63, 64} {
			batch := randomPatterns(r, len(c.PseudoInputs()), n)
			// Sprinkle X bits: both implementations must load them as 0.
			for _, cube := range batch {
				for j := range cube {
					if r.Intn(5) == 0 {
						cube[j] = logic.X
					}
				}
			}
			mask := p.Load(words, batch)
			p.Run(words)
			ps.Load(batch)
			ps.Run()
			if mask != ps.Mask() {
				t.Fatalf("%s n=%d: mask %x vs PSim %x", c.Name, n, mask, ps.Mask())
			}
			for id := 0; id < c.NumGates(); id++ {
				if got, want := words[id]&mask, ps.Word(netlist.GateID(id))&mask; got != want {
					t.Fatalf("%s n=%d gate %s: compiled %x, PSim %x",
						c.Name, n, c.Gate(netlist.GateID(id)).Name, got, want)
				}
			}
		}
	}
}

// TestCompileFanoutCutsDFFEdges: the compiled fanout adjacency must stop at
// DFF data pins — they are observation boundaries, not propagation paths —
// while the observed flags must cover exactly the pseudo-output drivers.
func TestCompileFanoutCutsDFFEdges(t *testing.T) {
	c := mustParse(t, "seq", seqBench)
	p := Compile(c)
	n1, _ := c.Lookup("N1") // drives FF1 (DFF) and Y (AND)
	y, _ := c.Lookup("Y")
	ff2, _ := c.Lookup("FF2") // feeds only N2 (NOT): no DFF consumer
	fo := p.fanouts[p.fanoutOff[n1]:p.fanoutOff[n1+1]]
	if len(fo) != 1 || netlist.GateID(fo[0]) != y {
		t.Fatalf("fanouts(N1) = %v, want just Y(%d); DFF edge must be cut", fo, y)
	}
	if !p.observed[n1] {
		t.Error("N1 drives a DFF data pin: must be observed")
	}
	if !p.observed[y] {
		t.Error("Y is a primary output: must be observed")
	}
	if p.observed[ff2] {
		t.Error("FF2 feeds no DFF data pin and no PO: must not be observed")
	}
	for _, id := range c.PseudoOutputs() {
		if !p.observed[id] {
			t.Fatalf("pseudo-output driver %s not observed", c.Gate(id).Name)
		}
	}
}

// TestCompileLevelsAndOrder: compiled levels mirror the netlist levelizer
// and the compiled order is the netlist topological order.
func TestCompileLevelsAndOrder(t *testing.T) {
	c := randomCircuit(t, rand.New(rand.NewSource(23)), 8, 80, 4, 4)
	p := Compile(c)
	if p.NumLevels() != c.Depth()+1 {
		t.Fatalf("NumLevels %d, depth+1 %d", p.NumLevels(), c.Depth()+1)
	}
	for id := 0; id < c.NumGates(); id++ {
		if int(p.level[id]) != c.Level(netlist.GateID(id)) {
			t.Fatalf("gate %d: level %d vs netlist %d", id, p.level[id], c.Level(netlist.GateID(id)))
		}
	}
	order := c.TopoOrder()
	if len(order) != len(p.order) {
		t.Fatalf("order length %d vs %d", len(p.order), len(order))
	}
	for i := range order {
		if netlist.GateID(p.order[i]) != order[i] {
			t.Fatalf("order[%d] = %d, want %d", i, p.order[i], order[i])
		}
	}
}

func TestCompilePanicsOnNonFinalized(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compile on a non-finalized circuit must panic")
		}
	}()
	c := netlist.New("raw")
	c.MustAddGate("a", netlist.Input)
	Compile(c)
}

// TestLoadMask covers the batch-size edge masks: 1 pattern, 63, 64.
func TestLoadMask(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	p := Compile(c)
	words := make([]uint64, c.NumGates())
	for _, tc := range []struct {
		n    int
		mask uint64
	}{
		{1, 1}, {63, (1 << 63) - 1}, {64, ^uint64(0)},
	} {
		batch := randomPatterns(rand.New(rand.NewSource(int64(tc.n))), 5, tc.n)
		if got := p.Load(words, batch); got != tc.mask {
			t.Fatalf("Load(%d patterns) mask %x, want %x", tc.n, got, tc.mask)
		}
	}
}
