package faultsim

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
)

// TestCoverageCurveMonotone asserts the coverage-vs-pattern curve the
// engine reports is well-formed: detected counts never decrease across
// Apply batches, pattern counts strictly increase, and the final point
// agrees with the engine's own accounting.
func TestCoverageCurveMonotone(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	flist := faults.CollapsedUniverse(c)
	e := NewEngine(c, flist)
	e.EnableCurve()

	rng := rand.New(rand.NewSource(7))
	// Several Apply calls with sizes that straddle the 64-pattern batch
	// boundary, so the curve spans both multi-batch and sub-batch applies.
	for _, n := range []int{1, 3, 70, 64, 5} {
		e.Apply(randomPatterns(rng, len(c.PseudoInputs()), n))
	}

	curve := e.CoverageCurve()
	if len(curve) == 0 {
		t.Fatal("no curve points recorded")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Detected < curve[i-1].Detected {
			t.Errorf("detected count decreased at point %d: %d -> %d",
				i, curve[i-1].Detected, curve[i].Detected)
		}
		if curve[i].Patterns <= curve[i-1].Patterns {
			t.Errorf("pattern count did not increase at point %d: %d -> %d",
				i, curve[i-1].Patterns, curve[i].Patterns)
		}
	}
	last := curve[len(curve)-1]
	if last.Patterns != e.NumPatterns() {
		t.Errorf("final curve point at %d patterns, engine applied %d", last.Patterns, e.NumPatterns())
	}
	if last.Detected != e.DetectedCount() {
		t.Errorf("final curve point detected %d, engine detected %d", last.Detected, e.DetectedCount())
	}
	if last.Detected != e.Result().NumDetected {
		t.Errorf("curve %d vs result %d detected", last.Detected, e.Result().NumDetected)
	}
}

// TestEngineInstrumentation checks the counters and trace events an
// instrumented engine produces: patterns/drops add up and every batch
// event parses as JSON with a non-decreasing detected count.
func TestEngineInstrumentation(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	flist := faults.CollapsedUniverse(c)

	var buf bytes.Buffer
	reg := obs.NewRegistry()
	col := obs.New(reg, obs.NewJSONLSink(&buf))

	e := NewEngine(c, flist)
	e.Instrument(col)
	rng := rand.New(rand.NewSource(7))
	e.Apply(randomPatterns(rng, len(c.PseudoInputs()), 100))

	snap := reg.Snapshot()
	if got := snap.Counters["faultsim.patterns.applied"]; got != 100 {
		t.Errorf("patterns.applied = %d, want 100", got)
	}
	if got := snap.Counters["faultsim.faults.dropped"]; got != int64(e.DetectedCount()) {
		t.Errorf("faults.dropped = %d, want %d", got, e.DetectedCount())
	}
	if got := snap.Counters["faultsim.batches"]; got != 2 {
		t.Errorf("batches = %d, want 2", got)
	}

	prev := -1
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev struct {
			Event    string `json:"event"`
			Detected int    `json:"detected"`
			Patterns int    `json:"patterns"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line does not parse: %v\n%s", err, line)
		}
		if ev.Event != "faultsim.batch" {
			continue
		}
		if ev.Detected < prev {
			t.Errorf("trace detected count decreased: %d after %d", ev.Detected, prev)
		}
		prev = ev.Detected
	}
	if prev != e.DetectedCount() {
		t.Errorf("last traced detected = %d, engine = %d", prev, e.DetectedCount())
	}
}
