package faultsim

import (
	"fmt"

	"repro/internal/netlist"
)

// This file is the read-only introspection surface of a compiled Program:
// exactly what the kernel will evaluate, decoded from the compiled arrays
// alone (opcodes, inversion words, fanin CSR, evaluation order) — never
// from the source netlist. The SAT-based equivalence check in internal/sat
// encodes a Program through this surface, so a compiler bug that corrupts
// the compiled form cannot hide behind a netlist-derived re-encoding.

// OpKind classifies a compiled opcode by its base word function. The
// arity-2 fast-path opcodes and their N-ary forms decode to the same kind;
// output inversion is reported separately.
type OpKind uint8

const (
	OpSource OpKind = iota // Input or DFF output: a stimulus value source
	OpBuf                  // identity of the single fanin
	OpAnd                  // word AND reduction over the fanins
	OpOr                   // word OR reduction
	OpXor                  // word XOR reduction
	OpConst                // constant word
)

var opKindNames = [...]string{
	OpSource: "SOURCE", OpBuf: "BUF", OpAnd: "AND", OpOr: "OR",
	OpXor: "XOR", OpConst: "CONST",
}

// String returns the canonical name of k.
func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// GateSpec describes one compiled gate exactly as the kernel evaluates it:
// base kind, whether the output word is inverted, and the fanin gate ids in
// evaluation order. Fanin aliases the Program's internal storage; callers
// must not modify it.
type GateSpec struct {
	Kind   OpKind
	Invert bool
	Fanin  []int32
}

// Spec decodes the compiled form of gate id. It panics when the inversion
// word is neither all-zeros nor all-ones — Compile only ever emits those
// two, so anything else means the Program bytes are corrupt and no decode
// is faithful.
func (p *Program) Spec(id int32) GateSpec {
	var kind OpKind
	switch p.op[id] {
	case pSource:
		kind = OpSource
	case pBuf:
		kind = OpBuf
	case pAnd2, pAndN:
		kind = OpAnd
	case pOr2, pOrN:
		kind = OpOr
	case pXor2, pXorN:
		kind = OpXor
	case pConst:
		kind = OpConst
	default:
		panic(fmt.Sprintf("faultsim: Spec of unknown opcode %d on gate %d", p.op[id], id))
	}
	var invert bool
	switch p.inv[id] {
	case 0:
		invert = false
	case ^uint64(0):
		invert = true
	default:
		panic(fmt.Sprintf("faultsim: gate %d has non-uniform inversion word %#x", id, p.inv[id]))
	}
	return GateSpec{Kind: kind, Invert: invert, Fanin: p.fanins[p.faninOff[id]:p.faninOff[id+1]]}
}

// NumGates returns the number of compiled gates (the circuit's gate count).
func (p *Program) NumGates() int { return len(p.op) }

// Order returns the compiled topological evaluation order — the exact
// sequence Run walks. The caller must not modify the returned slice.
func (p *Program) Order() []int32 { return p.order }

// PPIs returns the pseudo-input frame (stimulus order) the Program was
// compiled with. The caller must not modify the returned slice.
func (p *Program) PPIs() []netlist.GateID { return p.ppis }

// PPOs returns the pseudo-output frame (observation order) the Program was
// compiled with. The caller must not modify the returned slice.
func (p *Program) PPOs() []netlist.GateID { return p.ppos }
