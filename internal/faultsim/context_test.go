package faultsim

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/faults"
)

func TestApplyContextMatchesApply(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	flist := faults.CollapsedUniverse(c)
	pats := randomPatterns(rand.New(rand.NewSource(7)), len(c.PseudoInputs()), 200)

	plain := NewEngine(c, flist)
	nPlain := plain.Apply(pats)

	ctxed := NewEngine(c, flist)
	nCtx, err := ctxed.ApplyContext(context.Background(), pats)
	if err != nil {
		t.Fatal(err)
	}
	if nCtx != nPlain || ctxed.DetectedCount() != plain.DetectedCount() ||
		ctxed.NumPatterns() != plain.NumPatterns() {
		t.Fatalf("ApplyContext diverged: %d/%d detections, %d/%d patterns",
			nCtx, nPlain, ctxed.NumPatterns(), plain.NumPatterns())
	}
}

func TestApplyContextCancelledPartial(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	flist := faults.CollapsedUniverse(c)
	pats := randomPatterns(rand.New(rand.NewSource(7)), len(c.PseudoInputs()), 500)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := NewEngine(c, flist)
	n, err := e.ApplyContext(ctx, pats)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
	if n != 0 || e.NumPatterns() != 0 {
		t.Errorf("pre-cancelled apply did work: %d detections, %d patterns", n, e.NumPatterns())
	}
	// The engine stays usable after a cancelled call.
	if _, err := e.ApplyContext(context.Background(), pats); err != nil {
		t.Fatal(err)
	}
	if e.NumPatterns() != len(pats) {
		t.Errorf("pattern accounting off after resume: %d != %d", e.NumPatterns(), len(pats))
	}
}

func TestSimulateContextComplete(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	flist := faults.CollapsedUniverse(c)
	pats := randomPatterns(rand.New(rand.NewSource(3)), len(c.PseudoInputs()), 64)
	want := Simulate(c, pats, flist)
	got, err := SimulateContext(context.Background(), c, pats, flist)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDetected != want.NumDetected {
		t.Errorf("SimulateContext detected %d, Simulate %d", got.NumDetected, want.NumDetected)
	}
}
