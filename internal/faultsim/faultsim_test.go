package faultsim

import (
	"math/rand"
	"testing"

	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
)

const c17Bench = `
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

const seqBench = `
INPUT(A)
INPUT(B)
OUTPUT(Y)
FF1 = DFF(N1)
FF2 = DFF(FF1)
N1 = XOR(A, N2)
N2 = NOT(FF2)
Y = AND(N1, B)
`

func mustParse(t *testing.T, name, src string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseBenchString(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randomPatterns(r *rand.Rand, width, n int) []logic.Cube {
	ps := make([]logic.Cube, n)
	for i := range ps {
		c := make(logic.Cube, width)
		for j := range c {
			c[j] = logic.FromBool(r.Intn(2) == 1)
		}
		ps[i] = c
	}
	return ps
}

// randomCircuit builds a random multi-level circuit for cross-checking.
func randomCircuit(t *testing.T, r *rand.Rand, nIn, nGates, nOut, nDFF int) *netlist.Circuit {
	t.Helper()
	c := netlist.New("rand")
	var pool []netlist.GateID
	for i := 0; i < nIn; i++ {
		pool = append(pool, c.MustAddGate(gname("in", i), netlist.Input))
	}
	types := []netlist.GateType{netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor, netlist.Not, netlist.Buf}
	for i := 0; i < nGates; i++ {
		tt := types[r.Intn(len(types))]
		nf := 1
		if tt.MinFanin() >= 2 {
			nf = 2 + r.Intn(2)
		}
		fanin := make([]netlist.GateID, nf)
		for j := range fanin {
			fanin[j] = pool[r.Intn(len(pool))]
		}
		pool = append(pool, c.MustAddGate(gname("g", i), tt, fanin...))
	}
	for i := 0; i < nDFF; i++ {
		src := pool[len(pool)-1-r.Intn(nGates/2+1)]
		pool = append(pool, c.MustAddGate(gname("ff", i), netlist.DFF, src))
	}
	for i := 0; i < nOut; i++ {
		if err := c.MarkOutput(pool[len(pool)-1-i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	return c
}

func gname(p string, i int) string {
	return p + string(rune('A'+i/26)) + string(rune('a'+i%26))
}

func TestEngineMatchesSerialOracle(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	circuits := []*netlist.Circuit{
		mustParse(t, "c17", c17Bench),
		mustParse(t, "seq", seqBench),
		randomCircuit(t, r, 6, 30, 3, 2),
		randomCircuit(t, r, 8, 60, 4, 5),
	}
	for _, c := range circuits {
		flist := faults.Universe(c)
		width := len(c.PseudoInputs())
		patterns := randomPatterns(r, width, 40)

		// Reference: per fault, scan patterns serially for first detection.
		wantBy := make([]int, len(flist))
		for i, f := range flist {
			wantBy[i] = Undetected
			for k, p := range patterns {
				if SerialDetects(c, p, f) {
					wantBy[i] = k
					break
				}
			}
		}

		res := Simulate(c, patterns, flist)
		for i := range flist {
			if res.DetectedBy[i] != wantBy[i] {
				t.Errorf("%s: fault %s: engine first-detect %d, serial %d",
					c.Name, flist[i].String(c), res.DetectedBy[i], wantBy[i])
			}
		}
	}
}

func TestEngineIncrementalEquivalentToBulk(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c := randomCircuit(t, r, 6, 40, 3, 3)
	flist := faults.CollapsedUniverse(c)
	patterns := randomPatterns(r, len(c.PseudoInputs()), 150)

	bulk := Simulate(c, patterns, flist)

	e := NewEngine(c, flist)
	total := 0
	for off := 0; off < len(patterns); off += 7 { // deliberately odd chunks
		end := off + 7
		if end > len(patterns) {
			end = len(patterns)
		}
		total += e.Apply(patterns[off:end])
	}
	if e.NumPatterns() != len(patterns) {
		t.Errorf("NumPatterns = %d", e.NumPatterns())
	}
	if total != bulk.NumDetected || e.DetectedCount() != bulk.NumDetected {
		t.Errorf("incremental detected %d, bulk %d", total, bulk.NumDetected)
	}
	inc := e.Result()
	for i := range flist {
		if inc.DetectedBy[i] != bulk.DetectedBy[i] {
			t.Errorf("fault %s: incremental %d, bulk %d",
				flist[i].String(c), inc.DetectedBy[i], bulk.DetectedBy[i])
		}
	}
}

func TestRedundantFaultStaysUndetected(t *testing.T) {
	// y = OR(a, AND(a,b)) == a, so the AND output SA0 is redundant.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
n = AND(a, b)
y = OR(a, n)
`
	c := mustParse(t, "red", src)
	n, _ := c.Lookup("n")
	f := faults.Fault{Gate: n, Pin: faults.StemPin, Stuck: logic.Zero}
	// Exhaustive patterns.
	var patterns []logic.Cube
	for bits := 0; bits < 4; bits++ {
		patterns = append(patterns, logic.Cube{logic.FromBit(bits & 1), logic.FromBit(bits >> 1)})
	}
	res := Simulate(c, patterns, []faults.Fault{f})
	if res.DetectedBy[0] != Undetected {
		t.Errorf("redundant fault detected by pattern %d", res.DetectedBy[0])
	}
	if res.Coverage() != 0 {
		t.Errorf("coverage = %v, want 0", res.Coverage())
	}
	if len(res.UndetectedFaults()) != 1 {
		t.Error("UndetectedFaults wrong")
	}
}

func TestCoverageAndRemaining(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	flist := faults.CollapsedUniverse(c)
	var patterns []logic.Cube
	for bits := 0; bits < 32; bits++ {
		cube := make(logic.Cube, 5)
		for i := 0; i < 5; i++ {
			cube[i] = logic.FromBit(bits >> uint(i) & 1)
		}
		patterns = append(patterns, cube)
	}
	e := NewEngine(c, flist)
	e.Apply(patterns)
	// c17 is fully testable: exhaustive patterns must reach 100% coverage.
	if e.Coverage() != 1 {
		t.Errorf("c17 exhaustive coverage = %v, remaining %d", e.Coverage(), len(e.Remaining()))
		for _, f := range e.Remaining() {
			t.Logf("undetected: %s", f.String(c))
		}
	}
	if len(e.Remaining()) != 0 {
		t.Error("Remaining nonempty at full coverage")
	}
}

func TestDFFPinBranchFault(t *testing.T) {
	// Force a net with fanout>1 feeding a DFF so a DFF pin fault exists.
	src := `
INPUT(a)
OUTPUT(y)
n = NOT(a)
f = DFF(n)
y = AND(n, f)
`
	c := mustParse(t, "dffpin", src)
	ffID, _ := c.Lookup("f")
	fault := faults.Fault{Gate: ffID, Pin: 0, Stuck: logic.Zero}
	// Pattern with a=0 makes n=1 != stuck 0 -> detected at the capture.
	p := logic.Cube{logic.Zero, logic.Zero} // a, f(state)
	res := Simulate(c, []logic.Cube{p}, []faults.Fault{fault})
	if res.DetectedBy[0] != 0 {
		t.Errorf("DFF pin fault not detected: %d", res.DetectedBy[0])
	}
	if !SerialDetects(c, p, fault) {
		t.Error("serial oracle disagrees on DFF pin fault")
	}
	// a=1 -> n=0 == stuck -> not detected.
	p2 := logic.Cube{logic.One, logic.Zero}
	if SerialDetects(c, p2, fault) {
		t.Error("DFF pin fault detected when good == stuck")
	}
}

func TestEmptyFaultListCoverage(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	res := Simulate(c, randomPatterns(rand.New(rand.NewSource(1)), 5, 3), nil)
	if res.Coverage() != 1 {
		t.Error("empty fault list must have coverage 1")
	}
}

func TestXBitsTreatedAsZero(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	flist := faults.CollapsedUniverse(c)
	withX, _ := logic.ParseCube("1X0X1")
	zeros, _ := logic.ParseCube("10001")
	a := Simulate(c, []logic.Cube{withX}, flist)
	b := Simulate(c, []logic.Cube{zeros}, flist)
	if a.NumDetected != b.NumDetected {
		t.Errorf("X-as-zero mismatch: %d vs %d", a.NumDetected, b.NumDetected)
	}
}

func TestFailingPositionsMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	c := randomCircuit(t, r, 7, 50, 4, 3)
	flist := faults.Universe(c)
	patterns := randomPatterns(r, len(c.PseudoInputs()), 90)
	for _, f := range flist {
		got := FailingPositions(c, patterns, f)
		for k, p := range patterns {
			want := SerialFailingOutputs(c, p, f)
			if len(want) != len(got[k]) {
				t.Fatalf("fault %s pattern %d: parallel %v, serial %v", f.String(c), k, got[k], want)
			}
			for i := range want {
				if got[k][i] != want[i] {
					t.Fatalf("fault %s pattern %d: parallel %v, serial %v", f.String(c), k, got[k], want)
				}
			}
		}
	}
}

func TestFailingPositionsDFFPin(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(y)
n = NOT(a)
f = DFF(n)
y = AND(n, f)
`
	c := mustParse(t, "dffpin", src)
	ffID, _ := c.Lookup("f")
	fault := faults.Fault{Gate: ffID, Pin: 0, Stuck: logic.Zero}
	p := logic.Cube{logic.Zero, logic.Zero}
	pos := FailingPositions(c, []logic.Cube{p}, fault)
	// The DFF capture position is outputs(1) + dff index 0 = 1.
	if len(pos[0]) != 1 || pos[0][0] != 1 {
		t.Errorf("DFF pin failing positions = %v, want [1]", pos[0])
	}
}
