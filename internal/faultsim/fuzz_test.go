package faultsim

import (
	"math/rand"
	"testing"

	"repro/internal/faults"
	"repro/internal/netlist"
)

// FuzzPPSFPWord cross-checks one packed word of the PPSFP kernel against 64
// independent serial evaluations: for an arbitrary parsed netlist, an
// arbitrary fault and an arbitrary batch of up to 64 random patterns, bit k
// of the kernel's detection behaviour (both the plain detection path and
// the per-output detail path) must agree with SerialDetects /
// SerialFailingOutputs run on pattern k alone — and, on circuits narrow
// enough, with the brute-force Oracle too.
func FuzzPPSFPWord(f *testing.F) {
	f.Add(c17Bench, int64(1), uint16(0), uint8(64))
	f.Add(c17Bench, int64(7), uint16(13), uint8(1))
	f.Add(seqBench, int64(3), uint16(5), uint8(63))
	f.Add("INPUT(a)\nOUTPUT(y)\nn = NOT(a)\nf = DFF(n)\ny = AND(n, f)\n", int64(9), uint16(2), uint8(65))
	f.Add("x = CONST1()\nOUTPUT(x)\n", int64(1), uint16(0), uint8(5))
	f.Fuzz(func(t *testing.T, src string, seed int64, faultSel uint16, nPat uint8) {
		c, err := netlist.ParseBenchString("fuzz", src)
		if err != nil {
			return
		}
		if c.NumGates() > 400 {
			return // keep a fuzz iteration cheap
		}
		flist := faults.Universe(c)
		if len(flist) == 0 {
			return
		}
		fault := flist[int(faultSel)%len(flist)]
		n := 1 + int(nPat)%64
		r := rand.New(rand.NewSource(seed))
		patterns := randomPatterns(r, len(c.PseudoInputs()), n)

		// Kernel, detection path: first-detecting pattern index.
		res := Simulate(c, patterns, []faults.Fault{fault})
		// Kernel, detail path: per-pattern failing output positions.
		positions := FailingPositions(c, patterns, fault)

		var oracle *Oracle
		if len(c.PseudoInputs()) <= MaxOracleInputs {
			oracle = NewOracle(c)
		}
		wantFirst := Undetected
		for k, p := range patterns {
			want := SerialFailingOutputs(c, p, fault)
			if wantFirst == Undetected && len(want) > 0 {
				wantFirst = k
			}
			got := positions[k]
			if len(got) != len(want) {
				t.Fatalf("fault %s pattern %d: kernel positions %v, serial %v",
					fault.String(c), k, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fault %s pattern %d: kernel positions %v, serial %v",
						fault.String(c), k, got, want)
				}
			}
			if det := SerialDetects(c, p, fault); det != (len(want) > 0) {
				t.Fatalf("serial self-contradiction on pattern %d", k)
			}
			if oracle != nil {
				if od := oracle.Detects(p, fault); od != (len(want) > 0) {
					t.Fatalf("fault %s pattern %d: oracle %v, serial %v",
						fault.String(c), k, od, len(want) > 0)
				}
			}
		}
		if res.DetectedBy[0] != wantFirst {
			t.Fatalf("fault %s: kernel first-detect %d, serial %d",
				fault.String(c), res.DetectedBy[0], wantFirst)
		}
	})
}
