package faultsim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/faults"
)

// BenchmarkShardedFaultSim measures the sharded engine against the serial
// one on real-sized stand-ins. On a single-CPU host the worker variants
// should track serial (the pool adds only dispatch overhead); speedup
// appears with GOMAXPROCS > 1.
func BenchmarkShardedFaultSim(b *testing.B) {
	for _, name := range []string{"s713", "s1423"} {
		c := standinCircuit(b, name)
		flist := faults.CollapsedUniverse(c)
		r := rand.New(rand.NewSource(3))
		patterns := randomPatterns(r, len(c.PseudoInputs()), 256)
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", name, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					e := NewEngine(c, flist)
					e.SetWorkers(w)
					e.Apply(patterns)
				}
			})
		}
	}
}

// BenchmarkShardDetectOnly isolates the hot inner kernel: one batch of 64
// patterns over the full fault list, serial detectWord loop vs shardDetect.
func BenchmarkShardDetectOnly(b *testing.B) {
	c := standinCircuit(b, "s1423")
	flist := faults.CollapsedUniverse(c)
	r := rand.New(rand.NewSource(5))
	patterns := randomPatterns(r, len(c.PseudoInputs()), 64)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// A fresh engine per iteration: no faults are dropped
				// between runs, so every iteration does identical work.
				eng := NewEngine(c, flist)
				eng.SetWorkers(w)
				eng.Apply(patterns)
			}
		})
	}
}

// BenchmarkKernelVsSerial measures the PPSFP kernel against the
// pattern-at-a-time serial reference engine — the speedup the 64-wide
// packing plus event-driven cone propagation buys on one thread.
// cmd/benchjson records the committed trajectory (BENCH_kernel.json);
// this benchmark is the in-tree smoke handle for the same comparison.
func BenchmarkKernelVsSerial(b *testing.B) {
	for _, name := range []string{"s713", "s1423"} {
		c := standinCircuit(b, name)
		flist := faults.CollapsedUniverse(c)
		r := rand.New(rand.NewSource(3))
		patterns := randomPatterns(r, len(c.PseudoInputs()), 128)
		b.Run(name+"/ppsfp", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Simulate(c, patterns, flist)
			}
		})
		b.Run(name+"/serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SerialSimulate(c, patterns, flist)
			}
		})
	}
}
