// Package faultsim implements stuck-at fault simulation over full-scan
// circuits. The workhorse is a 64-wide PPSFP (parallel-pattern single-fault
// propagation) engine with fault dropping: the netlist is compiled once into
// a levelized evaluation Program, 64 patterns are packed per machine word,
// the good circuit is evaluated in one word-wide pass per batch, and each
// fault is then propagated event-driven through its fanout cone only. Two
// deliberately independent reference implementations cross-check it: the
// pattern-at-a-time serial engine (SerialSimulate/SerialDetects, any input
// width) and the exhaustive brute-force Oracle (<= 16 inputs).
package faultsim

import (
	"context"
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sim"
)

// Undetected marks a fault with no detecting pattern.
const Undetected = -1

// Result reports the outcome of simulating a pattern set against a fault
// list. Faults and DetectedBy are parallel: DetectedBy[i] is the index of
// the first pattern detecting Faults[i], or Undetected.
type Result struct {
	Faults      []faults.Fault
	DetectedBy  []int
	NumDetected int
}

// Coverage returns the fault coverage in [0, 1]; 1 for an empty fault list.
func (r *Result) Coverage() float64 {
	if len(r.Faults) == 0 {
		return 1
	}
	return float64(r.NumDetected) / float64(len(r.Faults))
}

// UndetectedFaults returns the faults with no detecting pattern.
func (r *Result) UndetectedFaults() []faults.Fault {
	var out []faults.Fault
	for i, d := range r.DetectedBy {
		if d == Undetected {
			out = append(out, r.Faults[i])
		}
	}
	return out
}

// Simulate runs the pattern set against the fault list with fault dropping
// and returns the per-fault first detection.
func Simulate(c *netlist.Circuit, patterns []logic.Cube, flist []faults.Fault) *Result {
	return SimulateWorkers(c, patterns, flist, 1)
}

// SimulateWorkers is Simulate with the fault list sharded across up to
// `workers` goroutines per 64-pattern batch (0 resolves to runtime.NumCPU()).
// The result is bit-identical to Simulate for every worker count.
func SimulateWorkers(c *netlist.Circuit, patterns []logic.Cube, flist []faults.Fault, workers int) *Result {
	e := NewEngine(c, flist)
	e.SetWorkers(workers)
	e.Apply(patterns)
	return e.Result()
}

// SimulateContext is Simulate with cancellation at 64-pattern batch
// granularity. On cancellation it returns the partial Result over the
// batches actually simulated, together with the context's error.
func SimulateContext(ctx context.Context, c *netlist.Circuit, patterns []logic.Cube, flist []faults.Fault) (*Result, error) {
	e := NewEngine(c, flist)
	_, err := e.ApplyContext(ctx, patterns)
	return e.Result(), err
}

// Engine is an incremental fault simulator: patterns are fed in batches via
// Apply, detected faults are dropped, and Remaining reports the survivors.
// ATPG drives an Engine pattern by pattern.
//
// Internally the engine is a 64-wide PPSFP (parallel-pattern single-fault
// propagation) kernel over a compiled Program: the good circuit is evaluated
// once per 64-pattern batch in compiled topological order, then each
// remaining fault is propagated event-driven through its fanout cone only,
// with word-wide operations and a per-fault detection mask.
type Engine struct {
	c    *netlist.Circuit
	prog *Program

	flist      []faults.Fault
	detectedBy []int // parallel to flist
	remaining  []int // indices into flist still undetected
	nDetected  int
	nPatterns  int

	good []uint64 // good-circuit words of the current batch

	ppos   []netlist.GateID
	dffPPO map[netlist.GateID][]int // DFF gate -> indices in ppo frame

	// Parallel detection. workers is the shard bound (1 = strictly serial);
	// ev is the serial evaluator, evals the lazily-grown per-worker pool,
	// and dets the index-addressed detection-word slots (parallel to
	// remaining) that workers fill and the serial merge consumes in order.
	workers int
	ev      *faultEval
	evals   []*faultEval
	dets    []uint64

	// Observability (all nil/false by default: zero overhead).
	col         *obs.Collector
	cPatterns   *obs.Counter // faultsim.patterns.applied
	cDropped    *obs.Counter // faultsim.faults.dropped
	cBatches    *obs.Counter // faultsim.batches
	tWorkers    []*obs.Timer // faultsim.worker.N busy time (sharded batches)
	recordCurve bool
	curve       []CurvePoint
}

// minShardFaults is the remaining-fault count below which a batch is
// simulated serially even on a multi-worker engine: under this size the
// goroutine fan-out costs more than the detection words it spreads out.
// The threshold never affects results, only wall-clock. A variable so the
// determinism tests can force tiny circuits through the sharded path.
var minShardFaults = 128

// faultEval holds the per-goroutine scratch state of single-fault
// propagation: the epoch-validated faulty words over the good-circuit words
// of the engine's current batch, plus the level-bucketed event queue that
// drives propagation through the fault's fanout cone. Each worker owns one
// evaluator, so sharded detection touches no shared mutable state.
type faultEval struct {
	e       *Engine
	fw      []uint64 // faulty words (epoch-validated)
	epoch   []uint32 // fw[g] valid iff epoch[g] == cur
	inq     []uint32 // g enqueued this fault iff inq[g] == cur
	cur     uint32
	buckets [][]int32 // per-level event queue, reused across faults
	scratch []uint64
}

func newFaultEval(e *Engine) *faultEval {
	return &faultEval{
		e:       e,
		fw:      make([]uint64, e.c.NumGates()),
		epoch:   make([]uint32, e.c.NumGates()),
		inq:     make([]uint32, e.c.NumGates()),
		buckets: make([][]int32, e.prog.NumLevels()),
	}
}

// CurvePoint is one point of the coverage-vs-pattern curve: the cumulative
// detected-fault count after Patterns patterns have been applied.
type CurvePoint struct {
	Patterns int
	Detected int
}

// NewEngine returns an engine over the given collapsed fault list.
func NewEngine(c *netlist.Circuit, flist []faults.Fault) *Engine {
	if !c.Finalized() {
		panic("faultsim: circuit not finalized")
	}
	e := &Engine{
		c:          c,
		prog:       Compile(c),
		flist:      flist,
		detectedBy: make([]int, len(flist)),
		good:       make([]uint64, c.NumGates()),
		ppos:       c.PseudoOutputs(),
		dffPPO:     make(map[netlist.GateID][]int),
		workers:    1,
	}
	e.ev = newFaultEval(e)
	for i := range e.detectedBy {
		e.detectedBy[i] = Undetected
		e.remaining = append(e.remaining, i)
	}
	// Map each DFF to the response-frame positions it captures, for
	// branch faults on DFF data pins.
	outs := len(c.Outputs())
	for i, d := range c.DFFs() {
		e.dffPPO[d] = append(e.dffPPO[d], outs+i)
	}
	return e
}

// Instrument attaches an observability collector: per-batch counters
// (patterns applied, faults dropped, batches simulated) and, when the
// collector traces, a "faultsim.batch" event per 64-pattern batch carrying
// the running coverage-vs-pattern curve. Instrumenting also enables curve
// recording. A nil collector is a no-op.
func (e *Engine) Instrument(col *obs.Collector) {
	if col == nil {
		return
	}
	e.col = col
	e.cPatterns = col.Counter("faultsim.patterns.applied")
	e.cDropped = col.Counter("faultsim.faults.dropped")
	e.cBatches = col.Counter("faultsim.batches")
	e.EnableCurve()
}

// SetWorkers bounds the worker pool Apply may use to shard the
// remaining-fault list per 64-pattern batch: n > 1 shards, n == 1 (the
// default) keeps the engine strictly serial, and n <= 0 resolves to
// runtime.NumCPU(). Detection outcomes are bit-identical for every
// setting — workers write detection words into index-addressed slots and
// the fault-dropping merge stays serial, in fault order — so only
// wall-clock changes.
func (e *Engine) SetWorkers(n int) {
	e.workers = par.Workers(n)
}

// Workers reports the engine's resolved worker bound.
func (e *Engine) Workers() int { return e.workers }

// EnableCurve turns on coverage-vs-pattern curve recording (one point per
// applied batch). Off by default so the ATPG hot path pays nothing.
func (e *Engine) EnableCurve() { e.recordCurve = true }

// CoverageCurve returns the recorded coverage-vs-pattern curve (empty
// unless EnableCurve or Instrument was called before Apply).
func (e *Engine) CoverageCurve() []CurvePoint {
	return append([]CurvePoint(nil), e.curve...)
}

// NumPatterns returns the number of patterns applied so far.
func (e *Engine) NumPatterns() int { return e.nPatterns }

// DetectedCount returns the number of faults detected so far.
func (e *Engine) DetectedCount() int { return e.nDetected }

// Coverage returns current fault coverage in [0, 1].
func (e *Engine) Coverage() float64 {
	if len(e.flist) == 0 {
		return 1
	}
	return float64(e.nDetected) / float64(len(e.flist))
}

// Remaining returns the still-undetected faults (a fresh slice).
func (e *Engine) Remaining() []faults.Fault {
	out := make([]faults.Fault, 0, len(e.remaining))
	for _, i := range e.remaining {
		out = append(out, e.flist[i])
	}
	return out
}

// Result snapshots the engine state into a Result.
func (e *Engine) Result() *Result {
	return &Result{
		Faults:      e.flist,
		DetectedBy:  append([]int(nil), e.detectedBy...),
		NumDetected: e.nDetected,
	}
}

// Apply fault-simulates the given patterns (any count; they are batched 64
// at a time) and returns how many previously-undetected faults they detect.
// Patterns with X bits are simulated with X loaded as 0, matching the
// deterministic X-fill convention of the ATPG.
func (e *Engine) Apply(patterns []logic.Cube) int {
	n, _ := e.apply(nil, patterns)
	return n
}

// ApplyContext is Apply with cancellation between 64-pattern batches: a
// cancelled context stops the simulation at the next batch boundary and
// returns ctx's error with the detections counted so far. The engine state
// stays consistent — every fully applied batch is accounted — so a caller
// may inspect Result and continue or abandon as it sees fit.
func (e *Engine) ApplyContext(ctx context.Context, patterns []logic.Cube) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return e.apply(ctx, patterns)
}

func (e *Engine) apply(ctx context.Context, patterns []logic.Cube) (int, error) {
	newly := 0
	for off := 0; off < len(patterns); off += sim.WordBits {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				// Account only the patterns actually simulated.
				e.nPatterns += off
				return newly, err
			}
		}
		end := off + sim.WordBits
		if end > len(patterns) {
			end = len(patterns)
		}
		dropped := e.applyBatch(patterns[off:end], e.nPatterns+off)
		newly += dropped
		e.cPatterns.Add(int64(end - off))
		e.cDropped.Add(int64(dropped))
		e.cBatches.Inc()
		if e.recordCurve {
			e.curve = append(e.curve, CurvePoint{Patterns: e.nPatterns + end, Detected: e.nDetected})
		}
		if e.col.Tracing() {
			e.col.Emit("faultsim.batch",
				obs.F("patterns", e.nPatterns+end),
				obs.F("batch_size", end-off),
				obs.F("dropped", dropped),
				obs.F("detected", e.nDetected),
				obs.F("remaining", len(e.remaining)),
				obs.F("coverage", e.Coverage()))
		}
	}
	e.nPatterns += len(patterns)
	return newly, nil
}

func (e *Engine) applyBatch(batch []logic.Cube, baseIndex int) int {
	if len(e.remaining) == 0 {
		return 0
	}
	mask := e.prog.Load(e.good, batch)
	e.prog.Run(e.good)

	// Detection words come either from the per-worker shards (index-
	// addressed slots, one per remaining fault) or from the serial
	// evaluator; the drop/first-detection merge below is serial and in
	// fault order either way, so both paths are bit-identical.
	var dets []uint64
	if e.workers > 1 && len(e.remaining) >= minShardFaults {
		dets = e.shardDetect(mask)
	}

	newly := 0
	keep := e.remaining[:0]
	for i, fi := range e.remaining {
		var det uint64
		if dets != nil {
			det = dets[i]
		} else {
			det = e.ev.detectWord(e.flist[fi], mask)
		}
		if det == 0 {
			keep = append(keep, fi)
			continue
		}
		// First detecting pattern = lowest set bit.
		k := 0
		for det&1 == 0 {
			det >>= 1
			k++
		}
		e.detectedBy[fi] = baseIndex + k
		e.nDetected++
		newly++
	}
	e.remaining = keep
	return newly
}

// shardDetect computes the detection word of every remaining fault for the
// loaded batch, sharded across the engine's workers. Slot i of the returned
// slice belongs to e.remaining[i] regardless of which worker computed it.
func (e *Engine) shardDetect(mask uint64) []uint64 {
	n := len(e.remaining)
	if cap(e.dets) < n {
		e.dets = make([]uint64, n)
	}
	dets := e.dets[:n]
	evals := e.shardEvals()
	timers := e.workerTimers()
	_ = par.Run(nil, n, e.workers, func(s par.Shard) error {
		ev := evals[s.Worker]
		var start time.Time
		if timers != nil {
			// lintgo:allow GO002 per-worker timing metric, never a result input.
			start = time.Now()
		}
		for i := s.Lo; i < s.Hi; i++ {
			dets[i] = ev.detectWord(e.flist[e.remaining[i]], mask)
		}
		if timers != nil {
			timers[s.Worker].Since(start)
		}
		return nil
	})
	return dets
}

// shardEvals grows the per-worker evaluator pool to the current worker
// bound. Evaluators are reused across batches; each is private to one
// worker slot for the duration of a sharded batch.
func (e *Engine) shardEvals() []*faultEval {
	for len(e.evals) < e.workers {
		e.evals = append(e.evals, newFaultEval(e))
	}
	return e.evals[:e.workers]
}

// workerTimers lazily creates the per-worker busy-time timers. Nil (no
// overhead) unless the engine is instrumented.
func (e *Engine) workerTimers() []*obs.Timer {
	if e.col == nil {
		return nil
	}
	for len(e.tWorkers) < e.workers {
		e.tWorkers = append(e.tWorkers, e.col.Timer(fmt.Sprintf("faultsim.worker.%d", len(e.tWorkers))))
	}
	return e.tWorkers[:e.workers]
}

// detectWord computes the detection word of one fault for the loaded batch:
// bit k set iff pattern k detects the fault at any pseudo output.
func (ev *faultEval) detectWord(f faults.Fault, mask uint64) uint64 {
	return ev.detectWordDetail(f, mask, nil)
}

// detectWordDetail is detectWord with an optional per-output capture:
// when perPPO is non-nil (length = pseudo-output frame), perPPO[i] receives
// the word of patterns failing at output i.
//
// Propagation is event-driven over the compiled Program: the fault is
// injected at its site, the site's combinational fanouts are pushed onto a
// level-bucketed queue, and only gates with a changed fanin are ever
// evaluated, in ascending level order. Because every gate's level is
// strictly greater than all of its fanins' levels, each gate is evaluated
// at most once, after all its changed fanins are final — so the set of
// changed gates (and hence the detection word) is exactly what a full
// topological sweep would compute, at the cost of the fault's cone.
func (ev *faultEval) detectWordDetail(f faults.Fault, mask uint64, perPPO []uint64) uint64 {
	e := ev.e
	p := e.prog
	stuck := uint64(0)
	if f.Stuck == logic.One {
		stuck = ^uint64(0)
	}

	g := e.c.Gate(f.Gate)
	if f.Pin != faults.StemPin && g.Type == netlist.DFF {
		// Branch fault on a DFF data pin: the captured value is stuck;
		// detection is any pattern where the good driver value differs.
		drv := g.Fanin[f.Pin]
		det := (e.good[drv] ^ stuck) & mask
		if perPPO != nil {
			if pos, ok := e.dffPPO[f.Gate]; ok {
				for _, pp := range pos {
					perPPO[pp] = det
				}
			}
		}
		return det
	}

	ev.cur++
	if ev.cur == 0 { // epoch wrapped: reset
		for i := range ev.epoch {
			ev.epoch[i] = 0
			ev.inq[i] = 0
		}
		ev.cur = 1
	}

	site := int32(f.Gate)
	if f.Pin == faults.StemPin {
		ev.fw[site] = stuck
	} else {
		// Branch fault: recompute gate f.Gate with pin forced.
		ev.fw[site] = ev.evalWithPin(site, f.Pin, stuck)
	}
	ev.epoch[site] = ev.cur
	if ev.fw[site] == e.good[site] {
		// The fault never changes the site value for this batch — but a
		// stem stuck fault still differs wherever good != stuck; that IS
		// fw != good. Equal means undetectable in this batch.
		return 0
	}

	var det uint64
	if p.observed[site] {
		det = (ev.fw[site] ^ e.good[site]) & mask
	}
	// Seed the event queue with the site's combinational fanouts. Every
	// fanout's level exceeds the site's, so processing levels upward from
	// there visits each cone gate exactly once.
	maxLvl := p.level[site]
	for _, s := range p.fanouts[p.fanoutOff[site]:p.fanoutOff[site+1]] {
		if ev.inq[s] != ev.cur {
			ev.inq[s] = ev.cur
			l := p.level[s]
			ev.buckets[l] = append(ev.buckets[l], s)
			if l > maxLvl {
				maxLvl = l
			}
		}
	}

	fanins, faninOff := p.fanins, p.faninOff
	for lvl := p.level[site] + 1; lvl <= maxLvl; lvl++ {
		bucket := ev.buckets[lvl]
		ev.buckets[lvl] = bucket[:0]
		for _, id := range bucket {
			off := faninOff[id]
			var v uint64
			switch p.op[id] {
			case pBuf:
				v = ev.val(fanins[off])
			case pAnd2:
				v = ev.val(fanins[off]) & ev.val(fanins[off+1])
			case pOr2:
				v = ev.val(fanins[off]) | ev.val(fanins[off+1])
			case pXor2:
				v = ev.val(fanins[off]) ^ ev.val(fanins[off+1])
			case pAndN:
				v = ^uint64(0)
				for _, fi := range fanins[off:faninOff[id+1]] {
					v &= ev.val(fi)
				}
			case pOrN:
				for _, fi := range fanins[off:faninOff[id+1]] {
					v |= ev.val(fi)
				}
			case pXorN:
				for _, fi := range fanins[off:faninOff[id+1]] {
					v ^= ev.val(fi)
				}
			case pConst:
				// Constants have no fanin; they can never be enqueued.
			}
			v ^= p.inv[id]
			if v == e.good[id] {
				continue
			}
			ev.fw[id] = v
			ev.epoch[id] = ev.cur
			if p.observed[id] {
				det |= (v ^ e.good[id]) & mask
			}
			for _, s := range p.fanouts[p.fanoutOff[id]:p.fanoutOff[id+1]] {
				if ev.inq[s] != ev.cur {
					ev.inq[s] = ev.cur
					l := p.level[s]
					ev.buckets[l] = append(ev.buckets[l], s)
					if l > maxLvl {
						maxLvl = l
					}
				}
			}
		}
	}

	if perPPO != nil {
		// Detail capture: re-derive the detection word per observation
		// position. PseudoOutputs holds driver gates, so a directly
		// observed site is covered by the same comparison.
		det = 0
		for i, id := range e.ppos {
			if ev.epoch[id] == ev.cur {
				d := (ev.fw[id] ^ e.good[id]) & mask
				det |= d
				perPPO[i] = d
			}
		}
	}
	return det & mask
}

// val returns gate id's word under the current fault: the faulty word when
// the gate changed this epoch, the good-circuit word otherwise.
func (ev *faultEval) val(id int32) uint64 {
	if ev.epoch[id] == ev.cur {
		return ev.fw[id]
	}
	return ev.e.good[id]
}

// evalWithPin recomputes gate id with fanin pin forced to the given word
// and all other fanins at their good values.
func (ev *faultEval) evalWithPin(id int32, pin int, forced uint64) uint64 {
	p := ev.e.prog
	off, end := p.faninOff[id], p.faninOff[id+1]
	arity := int(end - off)
	if cap(ev.scratch) < arity {
		ev.scratch = make([]uint64, arity)
	}
	in := ev.scratch[:arity]
	for j, fin := range p.fanins[off:end] {
		if j == pin {
			in[j] = forced
		} else {
			in[j] = ev.e.good[fin]
		}
	}
	return p.evalWords(id, in)
}

// FailingPositions runs the fault against the pattern set and returns, per
// failing pattern index, the pseudo-output positions that miscompare — the
// full-response dictionary column of the fault. It uses the bit-parallel
// engine, so building whole-core dictionaries stays fast.
func FailingPositions(c *netlist.Circuit, patterns []logic.Cube, f faults.Fault) map[int][]int {
	e := NewEngine(c, []faults.Fault{f})
	out := make(map[int][]int)
	perPPO := make([]uint64, len(e.ppos))
	for off := 0; off < len(patterns); off += sim.WordBits {
		end := off + sim.WordBits
		if end > len(patterns) {
			end = len(patterns)
		}
		mask := e.prog.Load(e.good, patterns[off:end])
		e.prog.Run(e.good)
		for i := range perPPO {
			perPPO[i] = 0
		}
		e.ev.detectWordDetail(f, mask, perPPO)
		for i, w := range perPPO {
			for w != 0 {
				k := trailingZeros(w)
				w &^= 1 << uint(k)
				out[off+k] = append(out[off+k], i)
			}
		}
	}
	return out
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}
