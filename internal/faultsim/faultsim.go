// Package faultsim implements stuck-at fault simulation over full-scan
// circuits: a 64-way bit-parallel engine with fault dropping (the workhorse
// behind ATPG and coverage reporting) and a slow serial reference
// implementation used to cross-check it in tests.
package faultsim

import (
	"context"
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sim"
)

// Undetected marks a fault with no detecting pattern.
const Undetected = -1

// Result reports the outcome of simulating a pattern set against a fault
// list. Faults and DetectedBy are parallel: DetectedBy[i] is the index of
// the first pattern detecting Faults[i], or Undetected.
type Result struct {
	Faults      []faults.Fault
	DetectedBy  []int
	NumDetected int
}

// Coverage returns the fault coverage in [0, 1]; 1 for an empty fault list.
func (r *Result) Coverage() float64 {
	if len(r.Faults) == 0 {
		return 1
	}
	return float64(r.NumDetected) / float64(len(r.Faults))
}

// UndetectedFaults returns the faults with no detecting pattern.
func (r *Result) UndetectedFaults() []faults.Fault {
	var out []faults.Fault
	for i, d := range r.DetectedBy {
		if d == Undetected {
			out = append(out, r.Faults[i])
		}
	}
	return out
}

// Simulate runs the pattern set against the fault list with fault dropping
// and returns the per-fault first detection.
func Simulate(c *netlist.Circuit, patterns []logic.Cube, flist []faults.Fault) *Result {
	return SimulateWorkers(c, patterns, flist, 1)
}

// SimulateWorkers is Simulate with the fault list sharded across up to
// `workers` goroutines per 64-pattern batch (0 resolves to runtime.NumCPU()).
// The result is bit-identical to Simulate for every worker count.
func SimulateWorkers(c *netlist.Circuit, patterns []logic.Cube, flist []faults.Fault, workers int) *Result {
	e := NewEngine(c, flist)
	e.SetWorkers(workers)
	e.Apply(patterns)
	return e.Result()
}

// SimulateContext is Simulate with cancellation at 64-pattern batch
// granularity. On cancellation it returns the partial Result over the
// batches actually simulated, together with the context's error.
func SimulateContext(ctx context.Context, c *netlist.Circuit, patterns []logic.Cube, flist []faults.Fault) (*Result, error) {
	e := NewEngine(c, flist)
	_, err := e.ApplyContext(ctx, patterns)
	return e.Result(), err
}

// Engine is an incremental fault simulator: patterns are fed in batches via
// Apply, detected faults are dropped, and Remaining reports the survivors.
// ATPG drives an Engine pattern by pattern.
type Engine struct {
	c    *netlist.Circuit
	psim *sim.PSim

	flist      []faults.Fault
	detectedBy []int // parallel to flist
	remaining  []int // indices into flist still undetected
	nDetected  int
	nPatterns  int

	good []uint64 // good-circuit words of the current batch

	ppos   []netlist.GateID
	dffPPO map[netlist.GateID][]int // DFF gate -> indices in ppo frame

	// Parallel detection. workers is the shard bound (1 = strictly serial);
	// ev is the serial evaluator, evals the lazily-grown per-worker pool,
	// and dets the index-addressed detection-word slots (parallel to
	// remaining) that workers fill and the serial merge consumes in order.
	workers int
	ev      *faultEval
	evals   []*faultEval
	dets    []uint64

	// Observability (all nil/false by default: zero overhead).
	col         *obs.Collector
	cPatterns   *obs.Counter // faultsim.patterns.applied
	cDropped    *obs.Counter // faultsim.faults.dropped
	cBatches    *obs.Counter // faultsim.batches
	tWorkers    []*obs.Timer // faultsim.worker.N busy time (sharded batches)
	recordCurve bool
	curve       []CurvePoint
}

// minShardFaults is the remaining-fault count below which a batch is
// simulated serially even on a multi-worker engine: under this size the
// goroutine fan-out costs more than the detection words it spreads out.
// The threshold never affects results, only wall-clock. A variable so the
// determinism tests can force tiny circuits through the sharded path.
var minShardFaults = 128

// faultEval holds the per-goroutine scratch state of single-fault
// propagation: the epoch-validated faulty words over the good-circuit words
// of the engine's current batch. Each worker owns one evaluator, so sharded
// detection touches no shared mutable state.
type faultEval struct {
	e       *Engine
	fw      []uint64 // faulty words (epoch-validated)
	epoch   []uint32
	cur     uint32
	scratch []uint64
}

func newFaultEval(e *Engine) *faultEval {
	return &faultEval{
		e:     e,
		fw:    make([]uint64, e.c.NumGates()),
		epoch: make([]uint32, e.c.NumGates()),
	}
}

// CurvePoint is one point of the coverage-vs-pattern curve: the cumulative
// detected-fault count after Patterns patterns have been applied.
type CurvePoint struct {
	Patterns int
	Detected int
}

// NewEngine returns an engine over the given collapsed fault list.
func NewEngine(c *netlist.Circuit, flist []faults.Fault) *Engine {
	if !c.Finalized() {
		panic("faultsim: circuit not finalized")
	}
	e := &Engine{
		c:          c,
		psim:       sim.NewPSim(c),
		flist:      flist,
		detectedBy: make([]int, len(flist)),
		good:       make([]uint64, c.NumGates()),
		ppos:       c.PseudoOutputs(),
		dffPPO:     make(map[netlist.GateID][]int),
		workers:    1,
	}
	e.ev = newFaultEval(e)
	for i := range e.detectedBy {
		e.detectedBy[i] = Undetected
		e.remaining = append(e.remaining, i)
	}
	// Map each DFF to the response-frame positions it captures, for
	// branch faults on DFF data pins.
	outs := len(c.Outputs())
	for i, d := range c.DFFs() {
		e.dffPPO[d] = append(e.dffPPO[d], outs+i)
	}
	return e
}

// Instrument attaches an observability collector: per-batch counters
// (patterns applied, faults dropped, batches simulated) and, when the
// collector traces, a "faultsim.batch" event per 64-pattern batch carrying
// the running coverage-vs-pattern curve. Instrumenting also enables curve
// recording. A nil collector is a no-op.
func (e *Engine) Instrument(col *obs.Collector) {
	if col == nil {
		return
	}
	e.col = col
	e.cPatterns = col.Counter("faultsim.patterns.applied")
	e.cDropped = col.Counter("faultsim.faults.dropped")
	e.cBatches = col.Counter("faultsim.batches")
	e.EnableCurve()
}

// SetWorkers bounds the worker pool Apply may use to shard the
// remaining-fault list per 64-pattern batch: n > 1 shards, n == 1 (the
// default) keeps the engine strictly serial, and n <= 0 resolves to
// runtime.NumCPU(). Detection outcomes are bit-identical for every
// setting — workers write detection words into index-addressed slots and
// the fault-dropping merge stays serial, in fault order — so only
// wall-clock changes.
func (e *Engine) SetWorkers(n int) {
	e.workers = par.Workers(n)
}

// Workers reports the engine's resolved worker bound.
func (e *Engine) Workers() int { return e.workers }

// EnableCurve turns on coverage-vs-pattern curve recording (one point per
// applied batch). Off by default so the ATPG hot path pays nothing.
func (e *Engine) EnableCurve() { e.recordCurve = true }

// CoverageCurve returns the recorded coverage-vs-pattern curve (empty
// unless EnableCurve or Instrument was called before Apply).
func (e *Engine) CoverageCurve() []CurvePoint {
	return append([]CurvePoint(nil), e.curve...)
}

// NumPatterns returns the number of patterns applied so far.
func (e *Engine) NumPatterns() int { return e.nPatterns }

// DetectedCount returns the number of faults detected so far.
func (e *Engine) DetectedCount() int { return e.nDetected }

// Coverage returns current fault coverage in [0, 1].
func (e *Engine) Coverage() float64 {
	if len(e.flist) == 0 {
		return 1
	}
	return float64(e.nDetected) / float64(len(e.flist))
}

// Remaining returns the still-undetected faults (a fresh slice).
func (e *Engine) Remaining() []faults.Fault {
	out := make([]faults.Fault, 0, len(e.remaining))
	for _, i := range e.remaining {
		out = append(out, e.flist[i])
	}
	return out
}

// Result snapshots the engine state into a Result.
func (e *Engine) Result() *Result {
	return &Result{
		Faults:      e.flist,
		DetectedBy:  append([]int(nil), e.detectedBy...),
		NumDetected: e.nDetected,
	}
}

// Apply fault-simulates the given patterns (any count; they are batched 64
// at a time) and returns how many previously-undetected faults they detect.
// Patterns with X bits are simulated with X loaded as 0, matching the
// deterministic X-fill convention of the ATPG.
func (e *Engine) Apply(patterns []logic.Cube) int {
	n, _ := e.apply(nil, patterns)
	return n
}

// ApplyContext is Apply with cancellation between 64-pattern batches: a
// cancelled context stops the simulation at the next batch boundary and
// returns ctx's error with the detections counted so far. The engine state
// stays consistent — every fully applied batch is accounted — so a caller
// may inspect Result and continue or abandon as it sees fit.
func (e *Engine) ApplyContext(ctx context.Context, patterns []logic.Cube) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return e.apply(ctx, patterns)
}

func (e *Engine) apply(ctx context.Context, patterns []logic.Cube) (int, error) {
	newly := 0
	for off := 0; off < len(patterns); off += sim.WordBits {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				// Account only the patterns actually simulated.
				e.nPatterns += off
				return newly, err
			}
		}
		end := off + sim.WordBits
		if end > len(patterns) {
			end = len(patterns)
		}
		dropped := e.applyBatch(patterns[off:end], e.nPatterns+off)
		newly += dropped
		e.cPatterns.Add(int64(end - off))
		e.cDropped.Add(int64(dropped))
		e.cBatches.Inc()
		if e.recordCurve {
			e.curve = append(e.curve, CurvePoint{Patterns: e.nPatterns + end, Detected: e.nDetected})
		}
		if e.col.Tracing() {
			e.col.Emit("faultsim.batch",
				obs.F("patterns", e.nPatterns+end),
				obs.F("batch_size", end-off),
				obs.F("dropped", dropped),
				obs.F("detected", e.nDetected),
				obs.F("remaining", len(e.remaining)),
				obs.F("coverage", e.Coverage()))
		}
	}
	e.nPatterns += len(patterns)
	return newly, nil
}

func (e *Engine) applyBatch(batch []logic.Cube, baseIndex int) int {
	if len(e.remaining) == 0 {
		return 0
	}
	e.psim.Load(batch)
	e.psim.Run()
	for id := 0; id < e.c.NumGates(); id++ {
		e.good[id] = e.psim.Word(netlist.GateID(id))
	}
	mask := e.psim.Mask()

	// Detection words come either from the per-worker shards (index-
	// addressed slots, one per remaining fault) or from the serial
	// evaluator; the drop/first-detection merge below is serial and in
	// fault order either way, so both paths are bit-identical.
	var dets []uint64
	if e.workers > 1 && len(e.remaining) >= minShardFaults {
		dets = e.shardDetect(mask)
	}

	newly := 0
	keep := e.remaining[:0]
	for i, fi := range e.remaining {
		var det uint64
		if dets != nil {
			det = dets[i]
		} else {
			det = e.ev.detectWord(e.flist[fi], mask)
		}
		if det == 0 {
			keep = append(keep, fi)
			continue
		}
		// First detecting pattern = lowest set bit.
		k := 0
		for det&1 == 0 {
			det >>= 1
			k++
		}
		e.detectedBy[fi] = baseIndex + k
		e.nDetected++
		newly++
	}
	e.remaining = keep
	return newly
}

// shardDetect computes the detection word of every remaining fault for the
// loaded batch, sharded across the engine's workers. Slot i of the returned
// slice belongs to e.remaining[i] regardless of which worker computed it.
func (e *Engine) shardDetect(mask uint64) []uint64 {
	n := len(e.remaining)
	if cap(e.dets) < n {
		e.dets = make([]uint64, n)
	}
	dets := e.dets[:n]
	evals := e.shardEvals()
	timers := e.workerTimers()
	_ = par.Run(nil, n, e.workers, func(s par.Shard) error {
		ev := evals[s.Worker]
		var start time.Time
		if timers != nil {
			// lintgo:allow GO002 per-worker timing metric, never a result input.
			start = time.Now()
		}
		for i := s.Lo; i < s.Hi; i++ {
			dets[i] = ev.detectWord(e.flist[e.remaining[i]], mask)
		}
		if timers != nil {
			timers[s.Worker].Since(start)
		}
		return nil
	})
	return dets
}

// shardEvals grows the per-worker evaluator pool to the current worker
// bound. Evaluators are reused across batches; each is private to one
// worker slot for the duration of a sharded batch.
func (e *Engine) shardEvals() []*faultEval {
	for len(e.evals) < e.workers {
		e.evals = append(e.evals, newFaultEval(e))
	}
	return e.evals[:e.workers]
}

// workerTimers lazily creates the per-worker busy-time timers. Nil (no
// overhead) unless the engine is instrumented.
func (e *Engine) workerTimers() []*obs.Timer {
	if e.col == nil {
		return nil
	}
	for len(e.tWorkers) < e.workers {
		e.tWorkers = append(e.tWorkers, e.col.Timer(fmt.Sprintf("faultsim.worker.%d", len(e.tWorkers))))
	}
	return e.tWorkers[:e.workers]
}

// detectWord computes the detection word of one fault for the loaded batch:
// bit k set iff pattern k detects the fault at any pseudo output.
func (ev *faultEval) detectWord(f faults.Fault, mask uint64) uint64 {
	return ev.detectWordDetail(f, mask, nil)
}

// detectWordDetail is detectWord with an optional per-output capture:
// when perPPO is non-nil (length = pseudo-output frame), perPPO[i] receives
// the word of patterns failing at output i.
func (ev *faultEval) detectWordDetail(f faults.Fault, mask uint64, perPPO []uint64) uint64 {
	e := ev.e
	stuck := uint64(0)
	if f.Stuck == logic.One {
		stuck = ^uint64(0)
	}

	g := e.c.Gate(f.Gate)
	if f.Pin != faults.StemPin && g.Type == netlist.DFF {
		// Branch fault on a DFF data pin: the captured value is stuck;
		// detection is any pattern where the good driver value differs.
		drv := g.Fanin[f.Pin]
		det := (e.good[drv] ^ stuck) & mask
		if perPPO != nil {
			if pos, ok := e.dffPPO[f.Gate]; ok {
				for _, p := range pos {
					perPPO[p] = det
				}
			}
		}
		return det
	}

	ev.cur++
	if ev.cur == 0 { // epoch wrapped: reset
		for i := range ev.epoch {
			ev.epoch[i] = 0
		}
		ev.cur = 1
	}

	var site netlist.GateID
	if f.Pin == faults.StemPin {
		site = f.Gate
		ev.fw[site] = stuck
		ev.epoch[site] = ev.cur
	} else {
		// Branch fault: recompute gate f.Gate with pin forced.
		site = f.Gate
		ev.fw[site] = ev.evalWithPin(g, f.Pin, stuck)
		ev.epoch[site] = ev.cur
	}
	if ev.fw[site] == e.good[site] {
		// The fault never changes the site value for this batch — but a
		// stem stuck fault still differs wherever good != stuck; that IS
		// fw != good. Equal means undetectable in this batch.
		return 0
	}

	// Propagate through the topological order. The site keeps its injected
	// value, and gates at or below the site's level cannot be downstream
	// of it, so both are skipped.
	siteLevel := e.c.Level(site)
	for _, id := range e.c.TopoOrder() {
		if id == site || e.c.Level(id) <= siteLevel {
			continue
		}
		gg := e.c.Gate(id)
		touched := false
		for _, fin := range gg.Fanin {
			if ev.epoch[fin] == ev.cur {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		if cap(ev.scratch) < len(gg.Fanin) {
			ev.scratch = make([]uint64, len(gg.Fanin))
		}
		in := ev.scratch[:len(gg.Fanin)]
		for j, fin := range gg.Fanin {
			if ev.epoch[fin] == ev.cur {
				in[j] = ev.fw[fin]
			} else {
				in[j] = e.good[fin]
			}
		}
		v := sim.EvalGateWord(gg.Type, in)
		if v != e.good[id] {
			ev.fw[id] = v
			ev.epoch[id] = ev.cur
		}
	}

	// Detection: any pseudo output whose faulty word differs from good.
	// PseudoOutputs holds driver gates, so a directly observed site (a PO
	// or a gate feeding a DFF) is covered by the same comparison.
	var det uint64
	for i, id := range e.ppos {
		if ev.epoch[id] == ev.cur {
			d := (ev.fw[id] ^ e.good[id]) & mask
			det |= d
			if perPPO != nil {
				perPPO[i] = d
			}
		}
	}
	return det & mask
}

// evalWithPin recomputes gate g with fanin pin forced to the given word and
// all other fanins at their good values.
func (ev *faultEval) evalWithPin(g *netlist.Gate, pin int, forced uint64) uint64 {
	if cap(ev.scratch) < len(g.Fanin) {
		ev.scratch = make([]uint64, len(g.Fanin))
	}
	in := ev.scratch[:len(g.Fanin)]
	for j, fin := range g.Fanin {
		if j == pin {
			in[j] = forced
		} else {
			in[j] = ev.e.good[fin]
		}
	}
	if !g.Type.Combinational() {
		panic(fmt.Sprintf("faultsim: branch fault on non-combinational gate %v", g.Type))
	}
	return sim.EvalGateWord(g.Type, in)
}

// FailingPositions runs the fault against the pattern set and returns, per
// failing pattern index, the pseudo-output positions that miscompare — the
// full-response dictionary column of the fault. It uses the bit-parallel
// engine, so building whole-core dictionaries stays fast.
func FailingPositions(c *netlist.Circuit, patterns []logic.Cube, f faults.Fault) map[int][]int {
	e := NewEngine(c, []faults.Fault{f})
	out := make(map[int][]int)
	perPPO := make([]uint64, len(e.ppos))
	for off := 0; off < len(patterns); off += sim.WordBits {
		end := off + sim.WordBits
		if end > len(patterns) {
			end = len(patterns)
		}
		e.psim.Load(patterns[off:end])
		e.psim.Run()
		for id := 0; id < e.c.NumGates(); id++ {
			e.good[id] = e.psim.Word(netlist.GateID(id))
		}
		for i := range perPPO {
			perPPO[i] = 0
		}
		e.ev.detectWordDetail(f, e.psim.Mask(), perPPO)
		for i, w := range perPPO {
			for w != 0 {
				k := trailingZeros(w)
				w &^= 1 << uint(k)
				out[off+k] = append(out[off+k], i)
			}
		}
	}
	return out
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}
