package faultsim

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench89"
	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// The differential suite pits the PPSFP kernel against the two independent
// reference implementations on every .bench fixture, on randomized
// netlists, at pattern counts straddling the 64-bit word boundary, and on
// degenerate stimulus words. "Match" always means the exact first-detection
// table — not just coverage counts.

// oddPatternCounts straddles every word-packing edge: a lone pattern, one
// short of a word, exactly one word, one into the second word, and one
// short of two words.
var oddPatternCounts = []int{1, 63, 64, 65, 127}

// fixtureCircuits parses every valid .bench fixture shipped with the
// netlist package.
func fixtureCircuits(t *testing.T) map[string]*netlist.Circuit {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "netlist", "testdata", "*.bench"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no netlist testdata fixtures found")
	}
	out := make(map[string]*netlist.Circuit, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		name := filepath.Base(p)
		c, err := netlist.ParseBenchString(name, string(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = c
	}
	return out
}

// diffAgainstSerial asserts the PPSFP engine (serial and sharded) produces
// the exact first-detection table of the pattern-at-a-time serial engine.
func diffAgainstSerial(t *testing.T, label string, c *netlist.Circuit, patterns []logic.Cube, flist []faults.Fault) {
	t.Helper()
	want := SerialSimulate(c, patterns, flist)
	got := Simulate(c, patterns, flist)
	compareDetections(t, label+"/ppsfp-vs-serial", c, flist, got, want)

	// Sharded kernel: force the shard path even on tiny fault lists.
	old := minShardFaults
	minShardFaults = 1
	defer func() { minShardFaults = old }()
	sharded := SimulateWorkers(c, patterns, flist, 4)
	compareDetections(t, label+"/sharded-vs-serial", c, flist, sharded, want)
}

func compareDetections(t *testing.T, label string, c *netlist.Circuit, flist []faults.Fault, got, want *Result) {
	t.Helper()
	if got.NumDetected != want.NumDetected {
		t.Fatalf("%s: detected %d, want %d", label, got.NumDetected, want.NumDetected)
	}
	for i := range flist {
		if got.DetectedBy[i] != want.DetectedBy[i] {
			t.Fatalf("%s: fault %s first-detect %d, want %d",
				label, flist[i].String(c), got.DetectedBy[i], want.DetectedBy[i])
		}
	}
}

// TestDifferentialFixtures runs every fixture at every odd pattern count
// against the serial engine.
func TestDifferentialFixtures(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for name, c := range fixtureCircuits(t) {
		flist := faults.Universe(c)
		width := len(c.PseudoInputs())
		for _, n := range oddPatternCounts {
			diffAgainstSerial(t, name, c, randomPatterns(r, width, n), flist)
		}
	}
}

// TestDifferentialFixturesOracle adds the third implementation: on every
// fixture narrow enough to brute-force, the exhaustive pattern set must
// yield identical first-detection tables from the PPSFP kernel, the serial
// engine, and the Oracle.
func TestDifferentialFixturesOracle(t *testing.T) {
	for name, c := range fixtureCircuits(t) {
		width := len(c.PseudoInputs())
		if width > MaxOracleInputs {
			t.Logf("%s: %d inputs, beyond oracle range — skipped", name, width)
			continue
		}
		flist := faults.CollapsedUniverse(c)
		patterns := AllPatterns(width)
		want := NewOracle(c).Simulate(patterns, flist)
		compareDetections(t, name+"/ppsfp-vs-oracle", c, flist,
			Simulate(c, patterns, flist), want)
		compareDetections(t, name+"/serial-vs-oracle", c, flist,
			SerialSimulate(c, patterns, flist), want)
	}
}

// TestDifferentialRandomNetlists sweeps randomized netlist shapes — deep,
// wide, sequential, tiny — against the serial engine, with an oracle leg
// on the narrow ones.
func TestDifferentialRandomNetlists(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	shapes := []struct {
		in, gates, out, dff int
	}{
		{2, 8, 1, 0},   // tiny
		{6, 30, 3, 2},  // small sequential
		{8, 120, 4, 6}, // mid
		{12, 250, 6, 10},
		{5, 60, 2, 0}, // combinational only
		{9, 90, 5, 16},
	}
	for si, s := range shapes {
		c := randomCircuit(t, r, s.in, s.gates, s.out, s.dff)
		flist := faults.Universe(c)
		width := len(c.PseudoInputs())
		for _, n := range []int{1, 65, 127} {
			diffAgainstSerial(t, c.Name, c, randomPatterns(r, width, n), flist)
		}
		if width <= MaxOracleInputs {
			patterns := randomPatterns(r, width, 64)
			want := NewOracle(c).Simulate(patterns, faults.CollapsedUniverse(c))
			compareDetections(t, c.Name+"/oracle", c, faults.CollapsedUniverse(c),
				Simulate(c, patterns, faults.CollapsedUniverse(c)), want)
		}
		_ = si
	}
}

// TestDifferentialEdgeWords covers degenerate stimulus: all-X cubes (the
// deterministic X-as-0 fill), constant all-zero and all-one words, and a
// full word of identical patterns.
func TestDifferentialEdgeWords(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	circuits := map[string]*netlist.Circuit{
		"c17":  mustParse(t, "c17", c17Bench),
		"seq":  mustParse(t, "seq", seqBench),
		"rand": randomCircuit(t, r, 7, 70, 4, 5),
	}
	for name, c := range circuits {
		flist := faults.Universe(c)
		width := len(c.PseudoInputs())
		allX := make([]logic.Cube, 64)
		allZero := make([]logic.Cube, 64)
		allOne := make([]logic.Cube, 64)
		for i := range allX {
			allX[i] = logic.NewCube(width)
			allZero[i] = make(logic.Cube, width)
			allOne[i] = make(logic.Cube, width)
			for j := 0; j < width; j++ {
				allZero[i][j] = logic.Zero
				allOne[i][j] = logic.One
			}
		}
		one := randomPatterns(r, width, 1)[0]
		same := make([]logic.Cube, 64)
		for i := range same {
			same[i] = one
		}
		for label, patterns := range map[string][]logic.Cube{
			"all-x": allX, "all-zero": allZero, "all-one": allOne, "repeated": same,
		} {
			diffAgainstSerial(t, name+"/"+label, c, patterns, flist)
		}
		// X-as-0 convention: an all-X word must behave exactly like an
		// all-zero word.
		x := Simulate(c, allX, flist)
		z := Simulate(c, allZero, flist)
		compareDetections(t, name+"/x-equals-zero", c, flist, x, z)
	}
}

// TestDifferentialStandinSerial runs a real-sized generated circuit (s713)
// through the serial engine at word-straddling pattern counts — the "full
// input range" differential check that the oracle cannot reach.
func TestDifferentialStandinSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("serial reference on s713 skipped in -short mode")
	}
	prof, ok := bench89.ProfileByName("s713")
	if !ok {
		t.Fatal("no s713 profile")
	}
	c, err := bench89.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	flist := faults.CollapsedUniverse(c)
	r := rand.New(rand.NewSource(404))
	for _, n := range oddPatternCounts {
		diffAgainstSerial(t, "s713", c, randomPatterns(r, len(c.PseudoInputs()), n), flist)
	}
}
