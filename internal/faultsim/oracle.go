package faultsim

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// MaxOracleInputs bounds exhaustive enumeration: AllPatterns refuses wider
// pseudo-input frames, because 2^17 patterns stops being "brute force you
// can afford in a test" territory.
const MaxOracleInputs = 16

// AllPatterns enumerates every fully specified cube over a width-bit
// pseudo-input frame, in ascending binary order: cube k has position j set
// to bit j of k. It panics beyond MaxOracleInputs — the caller should skip
// circuits too wide to brute-force rather than silently subsample.
func AllPatterns(width int) []logic.Cube {
	if width < 0 || width > MaxOracleInputs {
		panic(fmt.Sprintf("faultsim: AllPatterns width %d outside [0, %d]", width, MaxOracleInputs))
	}
	out := make([]logic.Cube, 1<<uint(width))
	for k := range out {
		p := make(logic.Cube, width)
		for j := 0; j < width; j++ {
			p[j] = logic.FromBool(k&(1<<uint(j)) != 0)
		}
		out[k] = p
	}
	return out
}

// Oracle is a brute-force reference fault simulator, deliberately sharing
// no machinery with the bit-parallel Engine or the recursive serial
// reference: one pattern at a time, plain bools, a full faulty-circuit
// re-evaluation per fault, no epochs, no dropping, no memoization. It is
// the third, slowest, most obviously-correct implementation that the
// differential tests pit the fast ones against.
type Oracle struct {
	c *netlist.Circuit
}

// NewOracle returns an oracle over the finalized circuit c.
func NewOracle(c *netlist.Circuit) *Oracle {
	if !c.Finalized() {
		panic("faultsim: oracle circuit not finalized")
	}
	return &Oracle{c: c}
}

// noFault marks an eval call with no injection.
var noFault = faults.Fault{Gate: -1}

// eval computes every gate's value for one pattern (X loaded as 0, the
// engine's convention). When inject is a real fault, its effect is applied
// at the site: a stem fault pins the site's value, a branch fault re-reads
// one fanin as the stuck value.
func (o *Oracle) eval(p logic.Cube, inject faults.Fault) []bool {
	vals := make([]bool, o.c.NumGates())
	for i, id := range o.c.PseudoInputs() {
		vals[id] = p[i] == logic.One
	}
	stuck := inject.Stuck == logic.One
	injecting := inject.Gate >= 0
	if injecting && inject.Pin == faults.StemPin {
		// A stem site that is a pseudo input (Input or DFF output) never
		// appears in the combinational topo order; pin it here.
		g := o.c.Gate(inject.Gate)
		if g.Type == netlist.Input || g.Type == netlist.DFF {
			vals[inject.Gate] = stuck
		}
	}
	for _, id := range o.c.TopoOrder() {
		g := o.c.Gate(id)
		if injecting && id == inject.Gate && inject.Pin == faults.StemPin {
			vals[id] = stuck
			continue
		}
		in := make([]bool, len(g.Fanin))
		for j, fin := range g.Fanin {
			in[j] = vals[fin]
		}
		if injecting && id == inject.Gate && inject.Pin != faults.StemPin {
			in[inject.Pin] = stuck
		}
		vals[id] = evalBool(g.Type, in)
	}
	return vals
}

// evalBool is the oracle's own gate evaluator — independent of
// sim.EvalGateWord on purpose.
func evalBool(t netlist.GateType, in []bool) bool {
	switch t {
	case netlist.Buf:
		return in[0]
	case netlist.Not:
		return !in[0]
	case netlist.And, netlist.Nand:
		r := true
		for _, v := range in {
			r = r && v
		}
		if t == netlist.Nand {
			return !r
		}
		return r
	case netlist.Or, netlist.Nor:
		r := false
		for _, v := range in {
			r = r || v
		}
		if t == netlist.Nor {
			return !r
		}
		return r
	case netlist.Xor, netlist.Xnor:
		r := false
		for _, v := range in {
			r = r != v
		}
		if t == netlist.Xnor {
			return !r
		}
		return r
	case netlist.Const0:
		return false
	case netlist.Const1:
		return true
	}
	panic(fmt.Sprintf("faultsim: oracle eval on non-combinational gate type %v", t))
}

// Detects reports whether pattern p detects fault f: any pseudo output of
// the faulty circuit differs from the good circuit.
func (o *Oracle) Detects(p logic.Cube, f faults.Fault) bool {
	good := o.eval(p, noFault)
	g := o.c.Gate(f.Gate)
	if f.Pin != faults.StemPin && g.Type == netlist.DFF {
		// Branch fault on a DFF data pin: the capture is stuck, observed
		// at that flop's response position; detection is the good driver
		// value differing from the stuck value.
		return good[g.Fanin[f.Pin]] != (f.Stuck == logic.One)
	}
	bad := o.eval(p, f)
	for _, id := range o.c.PseudoOutputs() {
		if good[id] != bad[id] {
			return true
		}
	}
	return false
}

// Simulate brute-forces the first-detection table of the pattern set: for
// every fault, the lowest pattern index that detects it (Undetected when
// none does). Semantically identical to Simulate/SimulateWorkers; built
// completely differently.
func (o *Oracle) Simulate(patterns []logic.Cube, flist []faults.Fault) *Result {
	res := &Result{
		Faults:     flist,
		DetectedBy: make([]int, len(flist)),
	}
	for fi, f := range flist {
		res.DetectedBy[fi] = Undetected
		for k, p := range patterns {
			if o.Detects(p, f) {
				res.DetectedBy[fi] = k
				res.NumDetected++
				break
			}
		}
	}
	return res
}
