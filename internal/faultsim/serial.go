package faultsim

import (
	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// SerialSimulate is the pattern-at-a-time serial reference fault simulator:
// one pattern simulated at a time, one full faulty-circuit topological
// re-evaluation per still-undetected fault, plain bools throughout — no
// word packing, no compiled program, no cone pruning. Fault dropping keeps
// its semantics identical to Simulate: DetectedBy[i] is the first pattern
// index detecting Faults[i], or Undetected.
//
// It is the differential oracle for circuits whose input frame is too wide
// for the exhaustive Oracle, and the honest serial baseline that
// cmd/benchjson measures the PPSFP kernel against.
func SerialSimulate(c *netlist.Circuit, patterns []logic.Cube, flist []faults.Fault) *Result {
	if !c.Finalized() {
		panic("faultsim: SerialSimulate on non-finalized circuit")
	}
	res := &Result{
		Faults:     flist,
		DetectedBy: make([]int, len(flist)),
	}
	remaining := make([]int, len(flist))
	for i := range flist {
		res.DetectedBy[i] = Undetected
		remaining[i] = i
	}
	good := make([]bool, c.NumGates())
	bad := make([]bool, c.NumGates())
	for k, p := range patterns {
		if len(remaining) == 0 {
			break
		}
		serialEval(c, p, noFault, good)
		keep := remaining[:0]
		for _, fi := range remaining {
			if serialPatternDetects(c, p, good, bad, flist[fi]) {
				res.DetectedBy[fi] = k
				res.NumDetected++
			} else {
				keep = append(keep, fi)
			}
		}
		remaining = keep
	}
	return res
}

// serialEval evaluates every gate of the circuit for one pattern (X loaded
// as 0) into vals, injecting the fault when it is a real one.
func serialEval(c *netlist.Circuit, p logic.Cube, inject faults.Fault, vals []bool) {
	ppis := c.PseudoInputs()
	if len(p) != len(ppis) {
		panic("faultsim: pattern width mismatch")
	}
	for i := range vals {
		vals[i] = false
	}
	for i, id := range ppis {
		vals[id] = p[i] == logic.One
	}
	stuck := inject.Stuck == logic.One
	injecting := inject.Gate >= 0
	if injecting && inject.Pin == faults.StemPin {
		g := c.Gate(inject.Gate)
		if g.Type == netlist.Input || g.Type == netlist.DFF {
			vals[inject.Gate] = stuck
		}
	}
	var in []bool
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if injecting && id == inject.Gate && inject.Pin == faults.StemPin {
			vals[id] = stuck
			continue
		}
		if cap(in) < len(g.Fanin) {
			in = make([]bool, len(g.Fanin))
		}
		in = in[:len(g.Fanin)]
		for j, fin := range g.Fanin {
			in[j] = vals[fin]
		}
		if injecting && id == inject.Gate && inject.Pin != faults.StemPin {
			in[inject.Pin] = stuck
		}
		vals[id] = evalBool(g.Type, in)
	}
}

// serialPatternDetects reports whether pattern p detects fault f, given the
// good-circuit values already evaluated for p. The faulty circuit is fully
// re-evaluated into bad (caller-owned scratch).
func serialPatternDetects(c *netlist.Circuit, p logic.Cube, good, bad []bool, f faults.Fault) bool {
	g := c.Gate(f.Gate)
	if f.Pin != faults.StemPin && g.Type == netlist.DFF {
		// Branch fault on a DFF data pin: the capture is stuck; detection
		// is the good driver value differing from the stuck value.
		return good[g.Fanin[f.Pin]] != (f.Stuck == logic.One)
	}
	serialEval(c, p, f, bad)
	for _, id := range c.PseudoOutputs() {
		if good[id] != bad[id] {
			return true
		}
	}
	return false
}

// SerialDetects reports whether the single fully specified pattern detects
// the fault. It is an independent, deliberately simple implementation
// (recursive evaluation with memoization, one pattern at a time) used as the
// reference oracle for the bit-parallel engine in tests, and by the ATPG to
// confirm generated patterns. X bits in the pattern are treated as 0,
// matching Engine.Apply.
func SerialDetects(c *netlist.Circuit, pattern logic.Cube, f faults.Fault) bool {
	return len(SerialFailingOutputs(c, pattern, f)) > 0
}

// SerialFailingOutputs returns the pseudo-output frame positions at which
// the faulty machine differs from the good one for the pattern (empty when
// the pattern does not detect the fault). Package diag builds fault
// dictionaries from it.
func SerialFailingOutputs(c *netlist.Circuit, pattern logic.Cube, f faults.Fault) []int {
	ppis := c.PseudoInputs()
	if len(pattern) != len(ppis) {
		panic("faultsim: pattern width mismatch")
	}
	in := make(map[netlist.GateID]bool, len(ppis))
	for i, id := range ppis {
		in[id] = pattern[i] == logic.One
	}

	stuck := f.Stuck == logic.One

	var evalGood func(id netlist.GateID) bool
	var evalBad func(id netlist.GateID) bool
	goodMemo := make(map[netlist.GateID]bool)
	badMemo := make(map[netlist.GateID]bool)

	evalGate := func(g *netlist.Gate, eval func(netlist.GateID) bool, faultyPin int) bool {
		vals := make([]logic.V, len(g.Fanin))
		for j, fin := range g.Fanin {
			if j == faultyPin {
				vals[j] = logic.FromBool(stuck)
			} else {
				vals[j] = logic.FromBool(eval(fin))
			}
		}
		return sim.EvalGate(g.Type, vals) == logic.One
	}

	evalGood = func(id netlist.GateID) bool {
		if v, ok := goodMemo[id]; ok {
			return v
		}
		g := c.Gate(id)
		var v bool
		if g.Type == netlist.Input || g.Type == netlist.DFF {
			v = in[id]
		} else {
			v = evalGate(g, evalGood, -999)
		}
		goodMemo[id] = v
		return v
	}
	evalBad = func(id netlist.GateID) bool {
		if v, ok := badMemo[id]; ok {
			return v
		}
		g := c.Gate(id)
		var v bool
		switch {
		case f.Pin == faults.StemPin && id == f.Gate:
			v = stuck
		case g.Type == netlist.Input || g.Type == netlist.DFF:
			v = in[id]
		case f.Pin != faults.StemPin && id == f.Gate:
			v = evalGate(g, evalBad, f.Pin)
		default:
			v = evalGate(g, evalBad, -999)
		}
		badMemo[id] = v
		return v
	}

	// A branch fault on a DFF data pin is observed at that DFF's capture
	// frame position.
	if f.Pin != faults.StemPin && c.Gate(f.Gate).Type == netlist.DFF {
		drv := c.Gate(f.Gate).Fanin[f.Pin]
		if evalGood(drv) == stuck {
			return nil
		}
		for i, d := range c.DFFs() {
			if d == f.Gate {
				return []int{len(c.Outputs()) + i}
			}
		}
		return nil
	}

	var fails []int
	for i, id := range c.PseudoOutputs() {
		if evalGood(id) != evalBad(id) {
			fails = append(fails, i)
		}
	}
	return fails
}
