package faultsim

import (
	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// SerialDetects reports whether the single fully specified pattern detects
// the fault. It is an independent, deliberately simple implementation
// (recursive evaluation with memoization, one pattern at a time) used as the
// reference oracle for the bit-parallel engine in tests, and by the ATPG to
// confirm generated patterns. X bits in the pattern are treated as 0,
// matching Engine.Apply.
func SerialDetects(c *netlist.Circuit, pattern logic.Cube, f faults.Fault) bool {
	return len(SerialFailingOutputs(c, pattern, f)) > 0
}

// SerialFailingOutputs returns the pseudo-output frame positions at which
// the faulty machine differs from the good one for the pattern (empty when
// the pattern does not detect the fault). Package diag builds fault
// dictionaries from it.
func SerialFailingOutputs(c *netlist.Circuit, pattern logic.Cube, f faults.Fault) []int {
	ppis := c.PseudoInputs()
	if len(pattern) != len(ppis) {
		panic("faultsim: pattern width mismatch")
	}
	in := make(map[netlist.GateID]bool, len(ppis))
	for i, id := range ppis {
		in[id] = pattern[i] == logic.One
	}

	stuck := f.Stuck == logic.One

	var evalGood func(id netlist.GateID) bool
	var evalBad func(id netlist.GateID) bool
	goodMemo := make(map[netlist.GateID]bool)
	badMemo := make(map[netlist.GateID]bool)

	evalGate := func(g *netlist.Gate, eval func(netlist.GateID) bool, faultyPin int) bool {
		vals := make([]logic.V, len(g.Fanin))
		for j, fin := range g.Fanin {
			if j == faultyPin {
				vals[j] = logic.FromBool(stuck)
			} else {
				vals[j] = logic.FromBool(eval(fin))
			}
		}
		return sim.EvalGate(g.Type, vals) == logic.One
	}

	evalGood = func(id netlist.GateID) bool {
		if v, ok := goodMemo[id]; ok {
			return v
		}
		g := c.Gate(id)
		var v bool
		if g.Type == netlist.Input || g.Type == netlist.DFF {
			v = in[id]
		} else {
			v = evalGate(g, evalGood, -999)
		}
		goodMemo[id] = v
		return v
	}
	evalBad = func(id netlist.GateID) bool {
		if v, ok := badMemo[id]; ok {
			return v
		}
		g := c.Gate(id)
		var v bool
		switch {
		case f.Pin == faults.StemPin && id == f.Gate:
			v = stuck
		case g.Type == netlist.Input || g.Type == netlist.DFF:
			v = in[id]
		case f.Pin != faults.StemPin && id == f.Gate:
			v = evalGate(g, evalBad, f.Pin)
		default:
			v = evalGate(g, evalBad, -999)
		}
		badMemo[id] = v
		return v
	}

	// A branch fault on a DFF data pin is observed at that DFF's capture
	// frame position.
	if f.Pin != faults.StemPin && c.Gate(f.Gate).Type == netlist.DFF {
		drv := c.Gate(f.Gate).Fanin[f.Pin]
		if evalGood(drv) == stuck {
			return nil
		}
		for i, d := range c.DFFs() {
			if d == f.Gate {
				return []int{len(c.Outputs()) + i}
			}
		}
		return nil
	}

	var fails []int
	for i, id := range c.PseudoOutputs() {
		if evalGood(id) != evalBad(id) {
			fails = append(fails, i)
		}
	}
	return fails
}
