package faultsim

import (
	"math/rand"
	"testing"

	"repro/internal/bench89"
	"repro/internal/faults"
	"repro/internal/netlist"
)

// standinCircuit generates an ISCAS'89 stand-in big enough that the
// sharded path engages at the default threshold.
func standinCircuit(t testing.TB, name string) *netlist.Circuit {
	t.Helper()
	prof, ok := bench89.ProfileByName(name)
	if !ok {
		t.Fatalf("unknown stand-in %q", name)
	}
	c, err := bench89.GenerateObserved(prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestShardedBitIdentical is the engine's half of the determinism
// guarantee: for real-sized circuits, the sharded simulator must produce
// the exact serial detection table — same first-detecting pattern for
// every fault, same coverage curve — at every worker count.
func TestShardedBitIdentical(t *testing.T) {
	for _, name := range []string{"s713", "s953"} {
		t.Run(name, func(t *testing.T) {
			c := standinCircuit(t, name)
			flist := faults.CollapsedUniverse(c)
			if len(flist) < minShardFaults {
				t.Fatalf("universe %d below shard threshold %d: test would not exercise sharding", len(flist), minShardFaults)
			}
			r := rand.New(rand.NewSource(7))
			patterns := randomPatterns(r, len(c.PseudoInputs()), 192)

			serial := NewEngine(c, flist)
			serial.EnableCurve()
			serial.Apply(patterns)

			for _, w := range []int{2, 4, 8} {
				par := NewEngine(c, flist)
				par.SetWorkers(w)
				par.EnableCurve()
				par.Apply(patterns)

				if got, want := par.DetectedCount(), serial.DetectedCount(); got != want {
					t.Fatalf("workers=%d: detected %d, serial %d", w, got, want)
				}
				gr, sr := par.Result(), serial.Result()
				for fi := range flist {
					if gr.DetectedBy[fi] != sr.DetectedBy[fi] {
						t.Fatalf("workers=%d fault %s: DetectedBy %d, serial %d",
							w, flist[fi].String(c), gr.DetectedBy[fi], sr.DetectedBy[fi])
					}
				}
				gc, sc := par.CoverageCurve(), serial.CoverageCurve()
				if len(gc) != len(sc) {
					t.Fatalf("workers=%d: curve length %d, serial %d", w, len(gc), len(sc))
				}
				for i := range gc {
					if gc[i] != sc[i] {
						t.Fatalf("workers=%d: curve[%d] %+v, serial %+v", w, i, gc[i], sc[i])
					}
				}
			}
		})
	}
}

// TestShardedIncrementalBitIdentical drives engines the way ATPG does —
// one pattern at a time with fault dropping in between — and checks the
// sharded engine tracks the serial one at every step.
func TestShardedIncrementalBitIdentical(t *testing.T) {
	c := standinCircuit(t, "s713")
	flist := faults.CollapsedUniverse(c)
	r := rand.New(rand.NewSource(11))
	patterns := randomPatterns(r, len(c.PseudoInputs()), 96)

	serial := NewEngine(c, flist)
	sharded := NewEngine(c, flist)
	sharded.SetWorkers(8)
	for i, p := range patterns {
		ns := serial.Apply(patterns[i : i+1])
		np := sharded.Apply(patterns[i : i+1])
		if ns != np {
			t.Fatalf("pattern %d (%v): serial dropped %d, sharded %d", i, p, ns, np)
		}
		if serial.DetectedCount() != sharded.DetectedCount() {
			t.Fatalf("pattern %d: detected diverged %d vs %d", i, serial.DetectedCount(), sharded.DetectedCount())
		}
	}
	sr, pr := serial.Result(), sharded.Result()
	for fi := range flist {
		if sr.DetectedBy[fi] != pr.DetectedBy[fi] {
			t.Fatalf("fault %s: DetectedBy serial %d, sharded %d", flist[fi].String(c), sr.DetectedBy[fi], pr.DetectedBy[fi])
		}
	}
}

// TestSetWorkersMidRun flips the worker count between batches; detection
// state is a pure function of the applied patterns, so even that must not
// change anything.
func TestSetWorkersMidRun(t *testing.T) {
	c := standinCircuit(t, "s713")
	flist := faults.CollapsedUniverse(c)
	r := rand.New(rand.NewSource(13))
	patterns := randomPatterns(r, len(c.PseudoInputs()), 128)

	serial := NewEngine(c, flist)
	serial.Apply(patterns)

	mixed := NewEngine(c, flist)
	for i := 0; i < len(patterns); i += 32 {
		mixed.SetWorkers(1 + (i/32)%4) // 1, 2, 3, 4
		end := i + 32
		if end > len(patterns) {
			end = len(patterns)
		}
		mixed.Apply(patterns[i:end])
	}
	sr, mr := serial.Result(), mixed.Result()
	for fi := range flist {
		if sr.DetectedBy[fi] != mr.DetectedBy[fi] {
			t.Fatalf("fault %s: DetectedBy serial %d, mixed-workers %d", flist[fi].String(c), sr.DetectedBy[fi], mr.DetectedBy[fi])
		}
	}
}
