package faultsim

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// This file compiles a finalized netlist into a Program: a flat,
// topologically ordered evaluation form that the PPSFP kernel runs over.
// Compilation happens once per Engine; every per-pattern-batch and per-fault
// cost after that is array walks over int32 indices — no map lookups, no
// Gate pointer chasing, no per-gate scratch refills.

// pOp is a compiled gate opcode. The twelve netlist gate types collapse to
// three word-wide reductions (AND, OR, XOR) with an output-inversion word,
// plus buffer, constant and source forms. Arity-2 gates (the overwhelming
// majority in ISCAS-style netlists) get dedicated opcodes so the hot loops
// read both fanins without bounds-checked slice iteration.
type pOp uint8

const (
	pSource pOp = iota // Input or DFF output: a value source, never evaluated
	pBuf               // 1 fanin: out = in ^ inv (NOT is pBuf with inv = ^0)
	pAnd2              // 2 fanin AND ^ inv (NAND: inv = ^0)
	pOr2               // 2 fanin OR ^ inv (NOR: inv = ^0)
	pXor2              // 2 fanin XOR ^ inv (XNOR: inv = ^0)
	pAndN              // N fanin AND ^ inv
	pOrN               // N fanin OR ^ inv
	pXorN              // N fanin XOR ^ inv
	pConst             // 0 fanin: out = inv (CONST0: 0, CONST1: ^0)
)

// compileOp maps a gate type and arity to its opcode and inversion word.
func compileOp(t netlist.GateType, arity int) (pOp, uint64) {
	const allOnes = ^uint64(0)
	switch t {
	case netlist.Input, netlist.DFF:
		return pSource, 0
	case netlist.Buf:
		return pBuf, 0
	case netlist.Not:
		return pBuf, allOnes
	case netlist.And:
		if arity == 2 {
			return pAnd2, 0
		}
		return pAndN, 0
	case netlist.Nand:
		if arity == 2 {
			return pAnd2, allOnes
		}
		return pAndN, allOnes
	case netlist.Or:
		if arity == 2 {
			return pOr2, 0
		}
		return pOrN, 0
	case netlist.Nor:
		if arity == 2 {
			return pOr2, allOnes
		}
		return pOrN, allOnes
	case netlist.Xor:
		if arity == 2 {
			return pXor2, 0
		}
		return pXorN, 0
	case netlist.Xnor:
		if arity == 2 {
			return pXor2, allOnes
		}
		return pXorN, allOnes
	case netlist.Const0:
		return pConst, 0
	case netlist.Const1:
		return pConst, allOnes
	}
	panic(fmt.Sprintf("faultsim: compile of invalid gate type %v", t))
}

// Program is the compiled, levelized evaluation form of a circuit: per-gate
// opcodes and inversion words, flat fanin and combinational-fanout
// adjacency (CSR layout), combinational levels, the topological evaluation
// order, and the observability flags of the pseudo-output frame. A Program
// is immutable after Compile and safe for concurrent readers; the PPSFP
// kernel's mutable per-fault state lives in faultEval, one per worker.
type Program struct {
	c *netlist.Circuit

	op  []pOp    // per gate
	inv []uint64 // per gate output inversion word

	faninOff []int32 // len NumGates+1; fanins[faninOff[g]:faninOff[g+1]]
	fanins   []int32

	// Combinational fanout adjacency. Edges into DFF data pins are cut —
	// they are observation boundaries, not propagation paths — exactly
	// mirroring the netlist levelization.
	fanoutOff []int32
	fanouts   []int32

	level    []int32 // combinational level; sources are 0
	order    []int32 // combinational gates in topological order
	observed []bool  // gate drives >= 1 pseudo-output frame position
	maxLevel int32

	ppis []netlist.GateID
	ppos []netlist.GateID
}

// Compile levelizes the finalized circuit into a Program. It panics on a
// non-finalized circuit, matching NewEngine.
func Compile(c *netlist.Circuit) *Program {
	if !c.Finalized() {
		panic("faultsim: Compile on non-finalized circuit")
	}
	n := c.NumGates()
	p := &Program{
		c:        c,
		op:       make([]pOp, n),
		inv:      make([]uint64, n),
		level:    make([]int32, n),
		observed: make([]bool, n),
		ppis:     c.PseudoInputs(),
		ppos:     c.PseudoOutputs(),
	}

	// Opcodes, levels and fanin CSR.
	p.faninOff = make([]int32, n+1)
	for id := 0; id < n; id++ {
		g := c.Gate(netlist.GateID(id))
		p.op[id], p.inv[id] = compileOp(g.Type, len(g.Fanin))
		p.level[id] = int32(c.Level(g.ID))
		if p.level[id] > p.maxLevel {
			p.maxLevel = p.level[id]
		}
		p.faninOff[id+1] = p.faninOff[id] + int32(len(g.Fanin))
	}
	p.fanins = make([]int32, p.faninOff[n])
	for id := 0; id < n; id++ {
		off := p.faninOff[id]
		for j, f := range c.Gate(netlist.GateID(id)).Fanin {
			p.fanins[off+int32(j)] = int32(f)
		}
	}

	// Combinational fanout CSR: count, prefix-sum, fill. Consumers that are
	// DFFs (or, degenerately, Inputs) are skipped.
	counts := make([]int32, n)
	for id := 0; id < n; id++ {
		if p.op[id] == pSource {
			continue
		}
		for _, f := range c.Gate(netlist.GateID(id)).Fanin {
			counts[f]++
		}
	}
	p.fanoutOff = make([]int32, n+1)
	for id := 0; id < n; id++ {
		p.fanoutOff[id+1] = p.fanoutOff[id] + counts[id]
	}
	p.fanouts = make([]int32, p.fanoutOff[n])
	fill := make([]int32, n)
	for id := 0; id < n; id++ {
		if p.op[id] == pSource {
			continue
		}
		for _, f := range c.Gate(netlist.GateID(id)).Fanin {
			p.fanouts[p.fanoutOff[f]+fill[f]] = int32(id)
			fill[f]++
		}
	}

	order := c.TopoOrder()
	p.order = make([]int32, len(order))
	for i, id := range order {
		p.order[i] = int32(id)
	}
	for _, id := range p.ppos {
		p.observed[id] = true
	}
	return p
}

// Circuit returns the circuit the program was compiled from.
func (p *Program) Circuit() *netlist.Circuit { return p.c }

// Load packs up to 64 stimulus cubes into the source words of the value
// array (one bit per pattern, X loaded as 0 — the engine's deterministic
// X-fill convention) and returns the mask covering the valid pattern bits.
// words must have length NumGates.
func (p *Program) Load(words []uint64, batch []logic.Cube) uint64 {
	if len(batch) == 0 || len(batch) > 64 {
		panic(fmt.Sprintf("faultsim: Program.Load batch size %d out of range 1..64", len(batch)))
	}
	for i := range words {
		words[i] = 0
	}
	for k, cube := range batch {
		if len(cube) != len(p.ppis) {
			panic(fmt.Sprintf("faultsim: pattern %d length %d != %d pseudo inputs", k, len(cube), len(p.ppis)))
		}
		bit := uint64(1) << uint(k)
		for i, id := range p.ppis {
			if cube[i] == logic.One {
				words[id] |= bit
			}
		}
	}
	if len(batch) >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(len(batch))) - 1
}

// Run evaluates the combinational logic over the loaded value words in
// compiled topological order. This is the good-circuit half of a PPSFP
// batch: one pass computes all 64 patterns' values for every gate.
func (p *Program) Run(words []uint64) {
	fanins, faninOff := p.fanins, p.faninOff
	for _, id := range p.order {
		off := faninOff[id]
		var v uint64
		switch p.op[id] {
		case pBuf:
			v = words[fanins[off]]
		case pAnd2:
			v = words[fanins[off]] & words[fanins[off+1]]
		case pOr2:
			v = words[fanins[off]] | words[fanins[off+1]]
		case pXor2:
			v = words[fanins[off]] ^ words[fanins[off+1]]
		case pAndN:
			v = ^uint64(0)
			for _, f := range fanins[off:faninOff[id+1]] {
				v &= words[f]
			}
		case pOrN:
			for _, f := range fanins[off:faninOff[id+1]] {
				v |= words[f]
			}
		case pXorN:
			for _, f := range fanins[off:faninOff[id+1]] {
				v ^= words[f]
			}
		case pConst:
			// v stays 0; inv supplies CONST1.
		default:
			panic(fmt.Sprintf("faultsim: Run hit source gate %d in topo order", id))
		}
		words[id] = v ^ p.inv[id]
	}
}

// evalWords evaluates the single gate id over explicitly supplied fanin
// value words (len = the gate's arity). Used for fault injection on a
// branch: one gate recomputed with one pin forced. It panics on source
// gates — a branch fault on an Input is meaningless and one on a DFF data
// pin is handled by the kernel before evaluation.
func (p *Program) evalWords(id int32, in []uint64) uint64 {
	var v uint64
	switch p.op[id] {
	case pBuf:
		v = in[0]
	case pAnd2:
		v = in[0] & in[1]
	case pOr2:
		v = in[0] | in[1]
	case pXor2:
		v = in[0] ^ in[1]
	case pAndN:
		v = ^uint64(0)
		for _, w := range in {
			v &= w
		}
	case pOrN:
		for _, w := range in {
			v |= w
		}
	case pXorN:
		for _, w := range in {
			v ^= w
		}
	case pConst:
	default:
		panic(fmt.Sprintf("faultsim: branch fault evaluation on non-combinational gate %v", p.c.Gate(netlist.GateID(id)).Type))
	}
	return v ^ p.inv[id]
}

// NumLevels returns the number of distinct combinational levels
// (maxLevel + 1); the kernel sizes its per-level event buckets with it.
func (p *Program) NumLevels() int { return int(p.maxLevel) + 1 }
