// Package lfsr implements linear-feedback shift registers and multiple-
// input signature registers over GF(2) — the on-chip pattern source and
// response sink of built-in self-test, the alternative to ATE-delivered
// test data that the paper's reference architecture [1] names ("a test
// pattern source and sink, either off-chip (ATE) or on-chip (BIST)").
//
// The package supports LFSR state stepping, pseudo-random pattern
// expansion for scan loading, MISR response compaction, and the GF(2)
// state-transition matrices that package compress uses to solve for seeds.
package lfsr

import (
	"fmt"

	"repro/internal/logic"
)

// LFSR is a Fibonacci linear-feedback shift register of up to 64 bits:
// state bit 0 is the output; feedback is the XOR of the tap positions.
type LFSR struct {
	n     int
	taps  uint64 // tap mask; bit i set means state bit i feeds back
	state uint64
}

// Maximal-length tap masks for the right-shift Fibonacci form used here
// (feedback = parity(state & taps) into the top bit). Tap position i in
// the mask corresponds to exponent n−i of the characteristic polynomial;
// the masks below come from the standard (n, ...) tap tables:
// 8: (8,6,5,4), 16: (16,14,13,11), 24: (24,23,22,17), 32: (32,22,2,1).
var primitiveTaps = map[int]uint64{
	8:  1 | 1<<2 | 1<<3 | 1<<4,
	16: 1 | 1<<2 | 1<<3 | 1<<5,
	24: 1 | 1<<1 | 1<<2 | 1<<7,
	32: 1 | 1<<10 | 1<<30 | 1<<31,
	64: 1 | 1<<1 | 1<<3 | 1<<4, // (64,63,61,60)
}

// New returns an n-bit LFSR with the given tap mask and a nonzero default
// seed of 1.
func New(n int, taps uint64) (*LFSR, error) {
	if n < 2 || n > 64 {
		return nil, fmt.Errorf("lfsr: width %d out of range 2..64", n)
	}
	if taps == 0 {
		return nil, fmt.Errorf("lfsr: empty tap mask")
	}
	if n < 64 && taps >= 1<<uint(n) {
		return nil, fmt.Errorf("lfsr: tap mask %#x exceeds width %d", taps, n)
	}
	return &LFSR{n: n, taps: taps, state: 1}, nil
}

// NewPrimitive returns a maximal-length LFSR for the supported widths
// (8, 16, 24, 32, 64).
func NewPrimitive(n int) (*LFSR, error) {
	taps, ok := PrimitiveTaps(n)
	if !ok {
		return nil, fmt.Errorf("lfsr: no built-in primitive polynomial for width %d", n)
	}
	return New(n, taps)
}

// PrimitiveTaps returns the built-in maximal-length tap mask for the
// supported widths (8, 16, 24, 32, 64), and whether one exists. Symbolic tools (package
// compress) use it to mirror the exact feedback structure.
func PrimitiveTaps(n int) (uint64, bool) {
	taps, ok := primitiveTaps[n]
	return taps, ok
}

// Width returns the register width.
func (l *LFSR) Width() int { return l.n }

// Seed sets the state; a zero seed is rejected (the all-zero state is the
// LFSR's fixed point).
func (l *LFSR) Seed(s uint64) error {
	if l.n < 64 {
		s &= (1 << uint(l.n)) - 1
	}
	if s == 0 {
		return fmt.Errorf("lfsr: zero seed is degenerate")
	}
	l.state = s
	return nil
}

// State returns the current state.
func (l *LFSR) State() uint64 { return l.state }

// Step advances the register one cycle and returns the output bit (the
// bit shifted out of position 0).
func (l *LFSR) Step() uint64 {
	out := l.state & 1
	fb := parity(l.state & l.taps)
	l.state >>= 1
	l.state |= fb << uint(l.n-1)
	return out
}

// Pattern expands the next len(frame) output bits into a fully specified
// cube — one pseudo-random scan load.
func (l *LFSR) Pattern(width int) logic.Cube {
	c := make(logic.Cube, width)
	for i := range c {
		c[i] = logic.FromBool(l.Step() == 1)
	}
	return c
}

// Period steps the register from its current state until the state
// recurs, up to limit steps, and returns the period (0 if limit was hit).
// Intended for tests on small widths.
func (l *LFSR) Period(limit int) int {
	start := l.state
	for i := 1; i <= limit; i++ {
		l.Step()
		if l.state == start {
			return i
		}
	}
	return 0
}

func parity(x uint64) uint64 {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x & 1
}

// MISR is a multiple-input signature register: it compacts response
// vectors into an n-bit signature with the same feedback structure.
type MISR struct {
	lfsr *LFSR
}

// NewMISR returns an n-bit MISR with a built-in primitive polynomial.
func NewMISR(n int) (*MISR, error) {
	l, err := NewPrimitive(n)
	if err != nil {
		return nil, err
	}
	l.state = 0 // a MISR legitimately starts at zero
	return &MISR{lfsr: l}, nil
}

// Absorb folds a response cube into the signature, WordBits at a time:
// each cycle the register shifts and XORs one response bit into the top.
// X bits absorb as 0 (unknown masking is the caller's concern).
func (m *MISR) Absorb(response logic.Cube) {
	l := m.lfsr
	for _, v := range response {
		fb := parity(l.state & l.taps)
		bit := uint64(0)
		if v == logic.One {
			bit = 1
		}
		l.state >>= 1
		l.state |= (fb ^ bit) << uint(l.n-1)
	}
}

// Signature returns the current signature.
func (m *MISR) Signature() uint64 { return m.lfsr.state }

// Reset clears the signature.
func (m *MISR) Reset() { m.lfsr.state = 0 }
