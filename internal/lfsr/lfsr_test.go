package lfsr

import (
	"testing"

	"repro/internal/logic"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 1); err == nil {
		t.Error("width 1 accepted")
	}
	if _, err := New(65, 1); err == nil {
		t.Error("width 65 accepted")
	}
	if _, err := New(8, 0); err == nil {
		t.Error("empty taps accepted")
	}
	if _, err := New(8, 1<<9); err == nil {
		t.Error("oversized taps accepted")
	}
	if _, err := NewPrimitive(13); err == nil {
		t.Error("unsupported primitive width accepted")
	}
}

func TestSeedValidation(t *testing.T) {
	l, err := NewPrimitive(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Seed(0); err == nil {
		t.Error("zero seed accepted")
	}
	if err := l.Seed(0x1FF); err != nil { // masked to width -> 0xFF
		t.Errorf("masked seed rejected: %v", err)
	}
	if l.State() != 0xFF {
		t.Errorf("state = %#x, want 0xFF", l.State())
	}
}

func TestPrimitivePolynomialsAreMaximalLength(t *testing.T) {
	// An n-bit maximal LFSR has period 2^n - 1. Verify for 8 and 16 bits.
	for _, n := range []int{8, 16} {
		l, err := NewPrimitive(n)
		if err != nil {
			t.Fatal(err)
		}
		want := 1<<uint(n) - 1
		if got := l.Period(want + 1); got != want {
			t.Errorf("width %d: period %d, want %d", n, got, want)
		}
	}
}

func TestPatternExpansion(t *testing.T) {
	l, _ := NewPrimitive(16)
	if err := l.Seed(0xACE1); err != nil {
		t.Fatal(err)
	}
	p := l.Pattern(40)
	if len(p) != 40 {
		t.Fatalf("pattern length %d", len(p))
	}
	if p.Specified() != 40 {
		t.Error("pattern must be fully specified")
	}
	// Deterministic: same seed, same pattern.
	l2, _ := NewPrimitive(16)
	l2.Seed(0xACE1)
	if l2.Pattern(40).String() != p.String() {
		t.Error("expansion not deterministic")
	}
	// Different seed, different pattern (overwhelmingly).
	l3, _ := NewPrimitive(16)
	l3.Seed(0x1234)
	if l3.Pattern(40).String() == p.String() {
		t.Error("different seeds produced identical patterns")
	}
}

func TestStepOutputMatchesState(t *testing.T) {
	l, _ := New(8, 1|1<<2|1<<3|1<<4)
	l.Seed(0b10110101)
	out := l.Step()
	if out != 1 {
		t.Errorf("output = %d, want the old LSB 1", out)
	}
}

func TestMISRSignatures(t *testing.T) {
	m, err := NewMISR(16)
	if err != nil {
		t.Fatal(err)
	}
	if m.Signature() != 0 {
		t.Error("fresh MISR signature must be 0")
	}
	good, _ := logic.ParseCube("1011001110001111")
	m.Absorb(good)
	sigGood := m.Signature()
	if sigGood == 0 {
		t.Error("nonzero response must perturb the signature")
	}
	// A single-bit error must change the signature (no aliasing for a
	// single absorb of length <= width).
	m.Reset()
	bad := good.Clone()
	bad[5] = logic.Not(bad[5])
	m.Absorb(bad)
	if m.Signature() == sigGood {
		t.Error("single-bit error aliased")
	}
	// Determinism.
	m.Reset()
	m.Absorb(good)
	if m.Signature() != sigGood {
		t.Error("MISR not deterministic")
	}
	if _, err := NewMISR(7); err == nil {
		t.Error("unsupported MISR width accepted")
	}
}

func TestMISRXAbsorbsAsZero(t *testing.T) {
	m, _ := NewMISR(16)
	withX, _ := logic.ParseCube("1X1X")
	zeros, _ := logic.ParseCube("1010")
	m.Absorb(withX)
	a := m.Signature()
	m.Reset()
	m.Absorb(zeros)
	if a != m.Signature() {
		t.Error("X must absorb as 0")
	}
}

func TestPeriodLimit(t *testing.T) {
	l, _ := NewPrimitive(16)
	if got := l.Period(10); got != 0 {
		t.Errorf("period within 10 steps = %d, want 0 (limit hit)", got)
	}
}

func TestPrimitive24MaximalLength(t *testing.T) {
	if testing.Short() {
		t.Skip("16M-step period check skipped in -short mode")
	}
	l, err := NewPrimitive(24)
	if err != nil {
		t.Fatal(err)
	}
	want := 1<<24 - 1
	if got := l.Period(want + 1); got != want {
		t.Errorf("width 24: period %d, want %d", got, want)
	}
}
