package coopt

import (
	"encoding/json"
	"fmt"

	"repro/internal/power"
	"repro/internal/sched"
)

// Schedule is the complete co-optimization result for one SOC at one TAM
// width: the packed placements, the idle-bit decomposition, the
// abort-on-fail session ordering, and the options fingerprint that keyed
// it. Field order is fixed and every float is rounded to four decimals,
// so Encode is byte-stable — the property the serving cache, the restart
// tests and the CI warm≡cold leg all lean on.
type Schedule struct {
	SOC         string `json:"soc"`
	TAMWidth    int    `json:"tam_width"`
	PowerBudget int64  `json:"power_budget,omitempty"`
	OptionsHash string `json:"options_hash"`

	TotalTime  int64   `json:"total_time"`
	LowerBound int64   `json:"lower_bound"`
	LBRatio    float64 `json:"lb_ratio"`

	TDVBits         int64   `json:"tdv_bits"`
	UsefulBits      int64   `json:"useful_bits"`
	WrapperIdleBits int64   `json:"wrapper_idle_bits"`
	TAMIdleBits     int64   `json:"tam_idle_bits"`
	Utilization     float64 `json:"utilization"`

	Placements []Placement `json:"placements"`

	// SessionTime is the session-based power schedule's total time for the
	// same cores and budget (internal/power's model) — the 1D baseline the
	// 2D packing is measured against. Present only under a power budget.
	SessionTime int64 `json:"session_time,omitempty"`

	Abort AbortReport `json:"abort"`
}

// AbortReport carries the abort-on-fail view of the schedule: the packed
// start order versus the expected-time-optimal order of internal/sched,
// with the expected times of both under the deterministic failure-
// probability proxy (see failProb).
type AbortReport struct {
	PackedOrder     []string `json:"packed_order"`
	PackedExpected  float64  `json:"packed_expected"`
	OptimalOrder    []string `json:"optimal_order"`
	OptimalExpected float64  `json:"optimal_expected"`
	// Improvement is the fractional expected-time saving of the optimal
	// order over the packed order when tests run serially abort-on-fail.
	Improvement float64 `json:"improvement"`
}

// failProb is the deterministic failure-probability proxy used when no
// yield data exists: cores with more patterns target more faults and are
// proportionally likelier to catch a defect. Scaling by 2·maxPatterns
// keeps every probability in (0, 0.5], safely inside sched's [0,1] domain.
func failProb(patterns, maxPatterns int) float64 {
	if maxPatterns <= 0 {
		return 0
	}
	return float64(patterns) / float64(2*maxPatterns)
}

// buildSchedule dresses a raw packing as the serving artifact.
func buildSchedule(socName string, cores []Core, pk *Packing, opts Options) (*Schedule, error) {
	s := &Schedule{
		SOC:             socName,
		TAMWidth:        pk.TAMWidth,
		PowerBudget:     opts.PowerBudget,
		OptionsHash:     opts.OptionsHash(),
		TotalTime:       pk.TotalTime,
		LowerBound:      pk.LowerBound,
		LBRatio:         round4(ratio(pk.TotalTime, pk.LowerBound)),
		TDVBits:         pk.TDVBits,
		UsefulBits:      pk.UsefulBits,
		WrapperIdleBits: pk.WrapperIdleBits,
		TAMIdleBits:     pk.TAMIdleBits,
		Utilization:     round4(ratio(pk.UsefulBits, pk.TDVBits)),
		Placements:      pk.Placements,
	}

	maxPatterns := 0
	patterns := make(map[string]int, len(cores))
	for _, c := range cores {
		patterns[c.Name] = c.Test.Patterns
		if c.Test.Patterns > maxPatterns {
			maxPatterns = c.Test.Patterns
		}
	}
	// Abort-on-fail ordering over the placed tests, in packed start order.
	tests := make([]sched.Test, len(pk.Placements))
	for i, p := range pk.Placements {
		tests[i] = sched.Test{
			Name:     p.Core,
			Time:     p.Finish - p.Start,
			FailProb: failProb(patterns[p.Core], maxPatterns),
		}
	}
	opt, err := sched.Optimize(tests)
	if err != nil {
		return nil, fmt.Errorf("coopt: abort-on-fail ordering: %w", err)
	}
	s.Abort = AbortReport{
		PackedExpected:  round4(sched.ExpectedTime(tests)),
		OptimalExpected: round4(sched.ExpectedTime(opt)),
	}
	for _, t := range tests {
		s.Abort.PackedOrder = append(s.Abort.PackedOrder, t.Name)
	}
	for _, t := range opt {
		s.Abort.OptimalOrder = append(s.Abort.OptimalOrder, t.Name)
	}
	if s.Abort.PackedExpected > 0 {
		s.Abort.Improvement = round4(1 - s.Abort.OptimalExpected/s.Abort.PackedExpected)
	}

	if opts.PowerBudget > 0 {
		loads := make([]power.CoreLoad, len(pk.Placements))
		for i, p := range pk.Placements {
			loads[i] = power.CoreLoad{Name: p.Core, Time: p.Finish - p.Start, Power: p.Power}
		}
		ses, err := power.ScheduleSessions(loads, opts.PowerBudget)
		if err != nil {
			return nil, fmt.Errorf("coopt: session baseline: %w", err)
		}
		s.SessionTime = ses.TotalTime
	}
	return s, nil
}

// Encode renders the schedule as its canonical artifact bytes: compact
// JSON plus a trailing newline. Identical schedules encode identically.
func (s *Schedule) Encode() ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
