package coopt

import (
	"bytes"
	"testing"

	"repro/internal/itc02"
	"repro/internal/tam"
)

// rect builds a single-configuration core for hand-made packing tests.
func rect(name string, w int, t, power int64) Core {
	return Core{
		Name:    name,
		Test:    tam.CoreTest{Name: name, Patterns: 1},
		Configs: []Config{{Width: w, Time: t}},
		Power:   power,
	}
}

// checkValid verifies the physical validity of a packing: every placement
// inside the TAM, no line double-booked by overlapping placements, and the
// makespan equal to the latest finish.
func checkValid(t *testing.T, pk *Packing) {
	t.Helper()
	var latest int64
	for i, p := range pk.Placements {
		if len(p.Lines) != p.Width {
			t.Fatalf("%s: %d lines for width %d", p.Core, len(p.Lines), p.Width)
		}
		for _, l := range p.Lines {
			if l < 0 || l >= pk.TAMWidth {
				t.Fatalf("%s: line %d outside TAM width %d", p.Core, l, pk.TAMWidth)
			}
		}
		if p.Finish <= p.Start && p.Finish != p.Start {
			t.Fatalf("%s: negative duration", p.Core)
		}
		if p.Finish > latest {
			latest = p.Finish
		}
		for _, q := range pk.Placements[i+1:] {
			if p.Start >= q.Finish || q.Start >= p.Finish {
				continue // disjoint in time
			}
			lines := map[int]bool{}
			for _, l := range p.Lines {
				lines[l] = true
			}
			for _, l := range q.Lines {
				if lines[l] {
					t.Fatalf("line %d double-booked by %s and %s", l, p.Core, q.Core)
				}
			}
		}
	}
	if latest != pk.TotalTime {
		t.Fatalf("TotalTime %d != latest finish %d", pk.TotalTime, latest)
	}
}

// TestPackAllITC02WithinTwiceLowerBound is the acceptance gate: on every
// ITC'02 SOC at TAM width 32, the heuristic schedule is valid, at least
// the lower bound, and within 2× of it.
func TestPackAllITC02WithinTwiceLowerBound(t *testing.T) {
	socs, err := itc02.AllSOCs()
	if err != nil {
		t.Fatal(err)
	}
	if len(socs) != 10 {
		t.Fatalf("expected 10 ITC'02 SOCs, got %d", len(socs))
	}
	for _, s := range socs {
		cores, err := BuildCores(s, 32)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		pk, err := Pack(cores, 32, 0, nil)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		checkValid(t, pk)
		if pk.TotalTime < pk.LowerBound {
			t.Errorf("%s: total %d beats lower bound %d — bound or packer broken",
				s.Name, pk.TotalTime, pk.LowerBound)
		}
		if pk.TotalTime > 2*pk.LowerBound {
			t.Errorf("%s: total %d exceeds 2x lower bound %d", s.Name, pk.TotalTime, pk.LowerBound)
		}
		if pk.TDVBits != 2*32*pk.TotalTime {
			t.Errorf("%s: TDV accounting broken", s.Name)
		}
		if pk.TAMIdleBits < 0 || pk.WrapperIdleBits < 0 {
			t.Errorf("%s: negative idle bits", s.Name)
		}
	}
}

// TestSweepByteIdenticalAcrossWorkers is the determinism gate: the full
// width sweep must marshal to the same bytes for every worker count.
func TestSweepByteIdenticalAcrossWorkers(t *testing.T) {
	s, err := itc02.SOCByName("d695")
	if err != nil {
		t.Fatal(err)
	}
	widths := []int{16, 24, 32, 40, 48, 56, 64}
	var ref []byte
	for _, workers := range []int{1, 2, 4, 8} {
		points, err := Sweep(s, widths, workers, 0)
		if err != nil {
			t.Fatal(err)
		}
		b := mustJSON(t, points)
		if ref == nil {
			ref = b
			continue
		}
		if !bytes.Equal(b, ref) {
			t.Fatalf("workers=%d produced different bytes:\n%s\nvs\n%s", workers, b, ref)
		}
	}
}

// TestScheduleByteIdenticalAcrossRuns: repeated cold computes of the same
// schedule encode identically (the checkpointless-restart property the
// serving cache depends on — nothing carries over between calls).
func TestScheduleByteIdenticalAcrossRuns(t *testing.T) {
	s, err := itc02.SOCByName("g1023")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{TAMWidth: 24, PowerBudget: 0}
	var ref []byte
	for run := 0; run < 3; run++ {
		sch, err := Optimize(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sch.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = b
			continue
		}
		if !bytes.Equal(b, ref) {
			t.Fatalf("run %d produced different bytes", run)
		}
	}
	if ref[len(ref)-1] != '\n' {
		t.Fatal("artifact must end in a newline")
	}
}

func TestPackPowerBudget(t *testing.T) {
	// Three unit-width rectangles, each power 5, budget 10: at most two
	// may overlap even though the TAM has room for all three.
	cores := []Core{rect("a", 1, 100, 5), rect("b", 1, 100, 5), rect("c", 1, 100, 5)}
	pk, err := Pack(cores, 4, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, pk)
	for _, p := range pk.Placements {
		over := int64(0)
		for _, q := range pk.Placements {
			if q.Start < p.Finish && q.Finish > p.Start {
				over += q.Power
			}
		}
		if over > 10 {
			t.Fatalf("power %d over budget 10 while %s runs", over, p.Core)
		}
	}
	if pk.TotalTime != 200 {
		t.Fatalf("expected serialization into two waves (200), got %d", pk.TotalTime)
	}

	if _, err := Pack([]Core{rect("hot", 1, 10, 99)}, 4, 10, nil); err == nil {
		t.Fatal("core alone above the budget must be rejected")
	}
}

func TestPackPrecedence(t *testing.T) {
	cores := []Core{rect("a", 2, 10, 0), rect("b", 2, 10, 0)}
	pk, err := Pack(cores, 4, 0, [][2]string{{"b", "a"}}) // a after b
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, pk)
	var a, b Placement
	for _, p := range pk.Placements {
		if p.Core == "a" {
			a = p
		} else {
			b = p
		}
	}
	if a.Start < b.Finish {
		t.Fatalf("a starts at %d before b finishes at %d", a.Start, b.Finish)
	}

	if _, err := Pack(cores, 4, 0, [][2]string{{"a", "b"}, {"b", "a"}}); err == nil {
		t.Fatal("precedence cycle must be rejected")
	}
	if _, err := Pack(cores, 4, 0, [][2]string{{"ghost", "a"}}); err == nil {
		t.Fatal("unknown precedence name must be rejected")
	}
	if _, err := Pack(cores, 4, 0, [][2]string{{"a", "a"}}); err == nil {
		t.Fatal("self-edge must be rejected")
	}
}

func TestPackRejectsBadWidth(t *testing.T) {
	cores := []Core{rect("a", 1, 1, 0)}
	if _, err := Pack(cores, 0, 0, nil); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := Pack(cores, MaxTAMWidth+1, 0, nil); err == nil {
		t.Fatal("width beyond ceiling accepted")
	}
	if _, err := Pack([]Core{rect("a", 1, 1, 0), rect("a", 1, 1, 0)}, 4, 0, nil); err == nil {
		t.Fatal("duplicate core names accepted")
	}
}

// TestSweepParetoMonotone: frontier-marked points must strictly improve
// with width, and the widest point's time never beats the lower bound.
func TestSweepParetoMonotone(t *testing.T) {
	s, err := itc02.SOCByName("h953")
	if err != nil {
		t.Fatal(err)
	}
	points, err := Sweep(s, []int{16, 32, 48, 64}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	best := int64(-1)
	for _, p := range points {
		if p.TotalTime < p.LowerBound {
			t.Fatalf("width %d: total %d below lower bound %d", p.TAMWidth, p.TotalTime, p.LowerBound)
		}
		if p.Pareto {
			if best >= 0 && p.TotalTime >= best {
				t.Fatalf("width %d marked Pareto but does not improve %d", p.TAMWidth, best)
			}
			best = p.TotalTime
		}
	}
	if !points[0].Pareto {
		t.Fatal("narrowest width must always be on the frontier")
	}
}
