package coopt

import (
	"fmt"
	"testing"
)

// TestHeuristicNeverBeatsOptimal exhaustively enumerates small rectangle
// instances and checks the ordering PackOptimal ≤ Pack ≤ 2·LowerBound and
// LowerBound ≤ PackOptimal. A heuristic "beating" the exhaustive optimum
// would mean one of the two packers builds invalid schedules.
func TestHeuristicNeverBeatsOptimal(t *testing.T) {
	widths := []int{1, 2, 3}
	times := []int64{2, 3, 7}
	tamW := 4

	// All instances of exactly 3 rectangles over the width×time grid
	// (9 shapes → 729 instances), plus a 5-rectangle spot-check below.
	shapes := make([][2]int64, 0, 9)
	for _, w := range widths {
		for _, tt := range times {
			shapes = append(shapes, [2]int64{int64(w), tt})
		}
	}
	run := func(t *testing.T, idx []int) {
		t.Helper()
		cores := make([]Core, len(idx))
		for i, k := range idx {
			cores[i] = rect(fmt.Sprintf("r%d", i), int(shapes[k][0]), shapes[k][1], 0)
		}
		opt, err := PackOptimal(cores, tamW, 0)
		if err != nil {
			t.Fatal(err)
		}
		pk, err := Pack(cores, tamW, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkValid(t, pk)
		lb := LowerBound(cores, tamW)
		if opt < lb {
			t.Fatalf("instance %v: optimum %d below lower bound %d", idx, opt, lb)
		}
		if pk.TotalTime < opt {
			t.Fatalf("instance %v: heuristic %d beats exhaustive optimum %d", idx, pk.TotalTime, opt)
		}
		if pk.TotalTime > 2*lb {
			t.Fatalf("instance %v: heuristic %d exceeds 2x lower bound %d", idx, pk.TotalTime, lb)
		}
	}
	for a := 0; a < len(shapes); a++ {
		for b := 0; b < len(shapes); b++ {
			for c := 0; c < len(shapes); c++ {
				run(t, []int{a, b, c})
			}
		}
	}
	// 5-rectangle instances along a fixed diagonal slice of the grid (full
	// enumeration at 5 rects is 9^5 × exponential DFS — too slow for tier 1).
	for off := 0; off < len(shapes); off++ {
		idx := make([]int, 5)
		for i := range idx {
			idx[i] = (off + 2*i) % len(shapes)
		}
		run(t, idx)
	}
}

// TestOptimalWithStaircaseChoice gives the brute force a real width/time
// trade-off per rectangle and checks the heuristic still never wins.
func TestOptimalWithStaircaseChoice(t *testing.T) {
	mk := func(name string) Core {
		return Core{
			Name: name,
			Configs: []Config{
				{Width: 1, Time: 12},
				{Width: 2, Time: 6},
				{Width: 4, Time: 3},
			},
		}
	}
	cores := []Core{mk("a"), mk("b"), mk("c"), mk("d")}
	opt, err := PackOptimal(cores, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := Pack(cores, 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, pk)
	// Total minimum area is 4·12=48 over width 4 → LB 12, and the perfect
	// packing (each core on 1 line, or pairs on 2 lines twice, ...) hits it.
	if opt != 12 {
		t.Fatalf("optimum = %d, want 12", opt)
	}
	if pk.TotalTime < opt || pk.TotalTime > 24 {
		t.Fatalf("heuristic %d outside [12, 24]", pk.TotalTime)
	}
}

// TestOptimalPowerConstrained: the power budget forces serialization the
// width capacity alone would not.
func TestOptimalPowerConstrained(t *testing.T) {
	cores := []Core{rect("a", 1, 10, 6), rect("b", 1, 10, 6)}
	opt, err := PackOptimal(cores, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 20 {
		t.Fatalf("power-constrained optimum = %d, want 20 (serial)", opt)
	}
	unconstrained, err := PackOptimal(cores, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if unconstrained != 10 {
		t.Fatalf("unconstrained optimum = %d, want 10 (parallel)", unconstrained)
	}
}

func TestOptimalGuards(t *testing.T) {
	if _, err := PackOptimal(nil, 4, 0); err == nil {
		t.Fatal("empty instance accepted")
	}
	six := make([]Core, 6)
	for i := range six {
		six[i] = rect(fmt.Sprintf("r%d", i), 1, 1, 0)
	}
	if _, err := PackOptimal(six, 4, 0); err == nil {
		t.Fatal("over-cap instance accepted")
	}
	if _, err := PackOptimal([]Core{rect("hot", 1, 1, 99)}, 4, 10); err == nil {
		t.Fatal("core alone above the budget accepted")
	}
}
