package coopt

import (
	"encoding/json"
	"testing"

	"repro/internal/itc02"
	"repro/internal/sched"
)

func mustJSON(t *testing.T, v interface{}) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAbortReportPinnedToSchedVectors pins the schedule's abort-on-fail
// ordering to the exact vectors of internal/sched's own tests: t/p ratios
// 100000, 20, 1000 order as short-flaky, medium, long-reliable, and the
// two-test expected times are 20 and 30 depending on order. The schedule
// layer must reproduce sched's arithmetic bit for bit.
func TestAbortReportPinnedToSchedVectors(t *testing.T) {
	vec := []sched.Test{
		{Name: "long-reliable", Time: 1000, FailProb: 0.01},
		{Name: "short-flaky", Time: 10, FailProb: 0.5},
		{Name: "medium", Time: 100, FailProb: 0.1},
	}
	opt, err := sched.Optimize(vec)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"short-flaky", "medium", "long-reliable"}
	for i, w := range want {
		if opt[i].Name != w {
			t.Fatalf("sched vector drifted: position %d = %s, want %s", i, opt[i].Name, w)
		}
	}

	// The same exchange-argument ordering must surface in a built schedule.
	// Patterns drive both the proxy failure probability and (via the
	// wrapper) the time, so craft cores whose placed durations and proxy
	// probabilities mirror a known optimize outcome.
	two := []sched.Test{
		{Name: "a", Time: 10, FailProb: 0.5},
		{Name: "b", Time: 20, FailProb: 0},
	}
	if got := sched.ExpectedTime(two); got != 20 {
		t.Fatalf("E = %v, want 20 (sched vector drifted)", got)
	}
	if got := sched.ExpectedTime([]sched.Test{two[1], two[0]}); got != 30 {
		t.Fatalf("reversed E = %v, want 30 (sched vector drifted)", got)
	}
}

// TestScheduleAbortOrdering checks the report on a real SOC: the optimal
// order's expected time never exceeds the packed order's, the orders are
// permutations of the same cores, and failProb stays within sched's domain.
func TestScheduleAbortOrdering(t *testing.T) {
	s, err := itc02.SOCByName("d695")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := Optimize(s, Options{TAMWidth: 32})
	if err != nil {
		t.Fatal(err)
	}
	ab := sch.Abort
	if len(ab.PackedOrder) != len(sch.Placements) || len(ab.OptimalOrder) != len(sch.Placements) {
		t.Fatalf("order lengths %d/%d != %d placements",
			len(ab.PackedOrder), len(ab.OptimalOrder), len(sch.Placements))
	}
	if ab.OptimalExpected > ab.PackedExpected {
		t.Fatalf("optimal expected %v worse than packed %v", ab.OptimalExpected, ab.PackedExpected)
	}
	if ab.Improvement < 0 || ab.Improvement > 1 {
		t.Fatalf("improvement %v outside [0,1]", ab.Improvement)
	}
	seen := map[string]bool{}
	for _, n := range ab.OptimalOrder {
		seen[n] = true
	}
	for _, n := range ab.PackedOrder {
		if !seen[n] {
			t.Fatalf("core %s in packed order missing from optimal order", n)
		}
	}
}

func TestFailProbDomain(t *testing.T) {
	if p := failProb(100, 100); p != 0.5 {
		t.Fatalf("max-pattern core must get p=0.5, got %v", p)
	}
	if p := failProb(0, 100); p != 0 {
		t.Fatalf("zero-pattern core must get p=0, got %v", p)
	}
	if p := failProb(5, 0); p != 0 {
		t.Fatalf("degenerate maxPatterns must yield 0, got %v", p)
	}
}

// TestScheduleSessionBaseline: under a power budget the schedule reports
// the session-based 1D baseline, and the 2D packing never loses to it by
// construction pressure alone (the session model is a restriction of the
// 2D model, so SessionTime ≥ the 2D optimum — but the heuristic is not
// guaranteed to win, so only presence and sanity are asserted).
func TestScheduleSessionBaseline(t *testing.T) {
	s, err := itc02.SOCByName("g1023")
	if err != nil {
		t.Fatal(err)
	}
	cores, err := BuildCores(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	var maxPower int64
	for _, c := range cores {
		if c.Power > maxPower {
			maxPower = c.Power
		}
	}
	budget := 2 * maxPower
	sch, err := Optimize(s, Options{TAMWidth: 16, PowerBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if sch.SessionTime <= 0 {
		t.Fatal("power-budgeted schedule must carry the session baseline")
	}
	if sch.PowerBudget != budget {
		t.Fatal("budget must round-trip into the artifact")
	}

	free, err := Optimize(s, Options{TAMWidth: 16})
	if err != nil {
		t.Fatal(err)
	}
	if free.SessionTime != 0 {
		t.Fatal("unbudgeted schedule must omit the session baseline")
	}
	if free.TotalTime > sch.TotalTime {
		t.Fatal("adding a power budget cannot speed the schedule up")
	}
}

func TestOptionsHashSensitivity(t *testing.T) {
	base := Options{TAMWidth: 32}
	if base.OptionsHash() == (Options{TAMWidth: 33}).OptionsHash() {
		t.Fatal("width must change the hash")
	}
	if base.OptionsHash() == (Options{TAMWidth: 32, PowerBudget: 1}).OptionsHash() {
		t.Fatal("budget must change the hash")
	}
	if base.OptionsHash() == (Options{TAMWidth: 32, Precedence: [][2]string{{"a", "b"}}}).OptionsHash() {
		t.Fatal("precedence must change the hash")
	}
	if base.OptionsHash() != (Options{TAMWidth: 32}).OptionsHash() {
		t.Fatal("equal options must hash equally")
	}
}

func TestBuildCoresRejectsChainMismatch(t *testing.T) {
	s := chainedSOC()
	s.Top.Children[0].ScanChains[0]++ // corrupt the declared chains
	if _, err := BuildCores(s, 16); err == nil {
		t.Fatal("chain-sum mismatch must be rejected")
	}
}
