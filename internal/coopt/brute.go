package coopt

import "fmt"

// maxBruteCores bounds PackOptimal: the exhaustive search is exponential
// in the core count and exists only to certify the heuristic on small
// instances.
const maxBruteCores = 5

// PackOptimal returns the minimum makespan of any valid schedule of the
// cores on a TAM of width w (optionally under a power budget), by
// exhaustive search. It is the ground truth the heuristic is tested
// against: Pack must never beat it, because PackOptimal is a true optimum
// for the line model.
//
// The search uses the capacity relaxation: a schedule is valid iff at
// every instant the summed widths of running cores is ≤ w (and the summed
// power ≤ budget). Any capacity-feasible set of intervals can be assigned
// to concrete, possibly non-contiguous TAM lines greedily in start order
// — a core starting at time t takes any free lines, and capacity
// feasibility guarantees enough lines are free — so the capacity optimum
// equals the line-model optimum. Within the relaxation, some optimal
// schedule is left-justified (every start is 0 or another core's finish),
// so the DFS enumerates placements in nondecreasing start order over
// exactly those event points, with branch-and-bound on the incumbent.
func PackOptimal(cores []Core, w int, powerBudget int64) (int64, error) {
	if len(cores) == 0 {
		return 0, fmt.Errorf("coopt: no cores to pack")
	}
	if len(cores) > maxBruteCores {
		return 0, fmt.Errorf("coopt: PackOptimal is capped at %d cores, got %d", maxBruteCores, len(cores))
	}
	if w < 1 {
		return 0, fmt.Errorf("coopt: TAM width %d outside 1..%d", w, MaxTAMWidth)
	}
	for _, c := range cores {
		if len(c.Configs) == 0 {
			return 0, fmt.Errorf("coopt: core %q has no wrapper configuration fitting width %d", c.Name, w)
		}
		if powerBudget > 0 && c.Power > powerBudget {
			return 0, fmt.Errorf("coopt: core %q alone exceeds the power budget (%d > %d)",
				c.Name, c.Power, powerBudget)
		}
	}

	type slot struct {
		start, finish int64
		width         int
		power         int64
	}
	placed := make([]slot, 0, len(cores))
	used := make([]bool, len(cores))
	best := upperBoundSerial(cores)

	// feasible reports whether adding cand keeps the width and power
	// capacities respected at every instant; checking at the starts of
	// overlapping intervals (and cand's own start) suffices because the
	// concurrent set only changes at starts.
	feasible := func(cand slot) bool {
		checkAt := func(t int64) bool {
			if t < cand.start || t >= cand.finish {
				return true
			}
			width, pow := cand.width, cand.power
			for _, s := range placed {
				if s.start <= t && t < s.finish {
					width += s.width
					pow += s.power
				}
			}
			return width <= w && (powerBudget <= 0 || pow <= powerBudget)
		}
		if !checkAt(cand.start) {
			return false
		}
		for _, s := range placed {
			if !checkAt(s.start) {
				return false
			}
		}
		return true
	}

	var dfs func(lastStart, makespan int64)
	dfs = func(lastStart, makespan int64) {
		if makespan >= best {
			return // bound: cannot improve the incumbent
		}
		done := true
		for i, c := range cores {
			if used[i] {
				continue
			}
			done = false
			// Candidate starts: left-justified event points at or after the
			// last placed start (nondecreasing start order is WLOG).
			starts := []int64{lastStart}
			for _, s := range placed {
				if s.finish >= lastStart {
					starts = append(starts, s.finish)
				}
			}
			for _, cfg := range c.Configs {
				if cfg.Width > w {
					continue
				}
				for _, st := range starts {
					cand := slot{start: st, finish: st + cfg.Time, width: cfg.Width, power: c.Power}
					if !feasible(cand) {
						continue
					}
					used[i] = true
					placed = append(placed, cand)
					m := makespan
					if cand.finish > m {
						m = cand.finish
					}
					dfs(st, m)
					placed = placed[:len(placed)-1]
					used[i] = false
				}
			}
		}
		if done && makespan < best {
			best = makespan
		}
	}
	dfs(0, 0)
	return best, nil
}

// upperBoundSerial is a trivially valid makespan: every core serial on
// its narrowest configuration, plus one so the first real schedule
// strictly improves it.
func upperBoundSerial(cores []Core) int64 {
	var t int64
	for _, c := range cores {
		t += c.Configs[0].Time
	}
	return t + 1
}
