package coopt

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/itc02"
	"repro/internal/tam"
)

// TestDesignSplittableMatchesDesignWrapper pins the closed-form fast path
// against the real tam.DesignWrapper on unit chains: a core whose scan
// cells are each their own length-1 chain must get bit-identical wrapper
// chains from both paths, for every width. This is the equivalence the
// staircase of every synthesized ITC'02 core rests on.
func TestDesignSplittableMatchesDesignWrapper(t *testing.T) {
	cases := []struct{ s, i, o, b int }{
		{0, 0, 0, 0},
		{1, 0, 0, 0},
		{7, 3, 2, 1},
		{16, 16, 16, 0},
		{100, 55, 40, 5},
		{137, 1, 99, 17},
		{200, 0, 0, 64},
		{63, 64, 1, 2},
	}
	for _, c := range cases {
		unit := tam.CoreTest{
			Name:     "unit",
			Inputs:   c.i,
			Outputs:  c.o,
			Bidirs:   c.b,
			Chains:   make([]int, c.s),
			Patterns: 1,
		}
		for k := range unit.Chains {
			unit.Chains[k] = 1
		}
		for w := 1; w <= 64; w++ {
			want, err := tam.DesignWrapper(unit, w)
			if err != nil {
				t.Fatal(err)
			}
			got, err := designSplittable(c.s, c.i, c.o, c.b, w)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("s=%d i=%d o=%d b=%d w=%d: designSplittable=%+v, DesignWrapper=%+v",
					c.s, c.i, c.o, c.b, w, got, want)
			}
		}
	}
}

func TestBalancedFill(t *testing.T) {
	got := balancedFill(7, 3)
	if !reflect.DeepEqual(got, []int{3, 2, 2}) {
		t.Fatalf("balancedFill(7,3) = %v", got)
	}
	if !reflect.DeepEqual(balancedFill(0, 4), []int{0, 0, 0, 0}) {
		t.Fatal("balancedFill(0,4) must be all zeros")
	}
}

// TestStaircaseShape checks the staircase invariants on every testable
// module of every ITC'02 SOC: widths strictly ascending starting at 1,
// times strictly descending, and every config's time equal to an actual
// wrapper design's test time.
func TestStaircaseShape(t *testing.T) {
	socs, err := itc02.AllSOCs()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range socs {
		cores, err := BuildCores(s, MaxTAMWidth)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for _, c := range cores {
			if len(c.Configs) == 0 {
				t.Fatalf("%s/%s: empty staircase", s.Name, c.Name)
			}
			if c.Configs[0].Width != 1 {
				t.Fatalf("%s/%s: staircase starts at width %d, want 1", s.Name, c.Name, c.Configs[0].Width)
			}
			for k := 1; k < len(c.Configs); k++ {
				prev, cur := c.Configs[k-1], c.Configs[k]
				if cur.Width <= prev.Width {
					t.Fatalf("%s/%s: widths not ascending at %d", s.Name, c.Name, k)
				}
				if cur.Time >= prev.Time {
					t.Fatalf("%s/%s: time %d at width %d does not improve on %d at width %d",
						s.Name, c.Name, cur.Time, cur.Width, prev.Time, prev.Width)
				}
			}
		}
	}
}

// chainedSOC builds a small profile whose cores declare per-chain
// lengths, exercising the unsplittable-chain path (tam.DesignWrapper) the
// synthesized ITC'02 profiles never take.
func chainedSOC() *core.SOC {
	return &core.SOC{
		Name: "chained",
		Top: &core.Module{
			Name: "top",
			Children: []*core.Module{
				{
					Name:       "a",
					Params:     core.Params{Inputs: 4, Outputs: 6, Bidirs: 1, ScanCells: 20, Patterns: 12},
					ScanChains: []int{9, 6, 5},
				},
				{
					Name:       "b",
					Params:     core.Params{Inputs: 2, Outputs: 2, ScanCells: 50, Patterns: 30},
					ScanChains: []int{30, 10, 10},
				},
			},
		},
	}
}

// TestStaircaseDeclaredChains exercises the unsplittable-chain path: the
// staircase must still be strictly improving and must agree with a direct
// DesignWrapper + TestTime evaluation at every kept width.
func TestStaircaseDeclaredChains(t *testing.T) {
	cores, err := BuildCores(chainedSOC(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(cores) != 2 {
		t.Fatalf("expected 2 testable cores, got %d", len(cores))
	}
	for _, c := range cores {
		if len(c.Test.Chains) == 0 {
			t.Fatalf("%s lost its declared chains", c.Name)
		}
		for _, cfg := range c.Configs {
			wc, err := tam.DesignWrapper(c.Test, cfg.Width)
			if err != nil {
				t.Fatal(err)
			}
			if got := tam.TestTime(c.Test, wc); got != cfg.Time {
				t.Fatalf("%s width %d: staircase time %d != DesignWrapper time %d",
					c.Name, cfg.Width, cfg.Time, got)
			}
		}
		// A core whose longest chain dominates saturates early: core b's
		// 30-cell chain bottlenecks every width ≥ 3, so its staircase must
		// stop well short of the requested 16.
		if c.Name == "b" {
			last := c.Configs[len(c.Configs)-1]
			if last.Width > 4 {
				t.Fatalf("b's staircase reaches width %d despite its 30-cell bottleneck chain", last.Width)
			}
		}
	}
}

func TestStaircaseRejectsZeroPatterns(t *testing.T) {
	if _, err := Staircase(tam.CoreTest{Name: "dead"}, 10, 8); err == nil {
		t.Fatal("zero-pattern core must be rejected")
	}
}
