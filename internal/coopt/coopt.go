// Package coopt is the wrapper/TAM co-optimization and test-scheduling
// subsystem: it turns an SOC profile into a concrete test schedule on a
// fixed-width test access mechanism, the layer the source paper deliberately
// excludes ("we exclude the impact of the scan chain organization or the
// test access mechanism from our analysis", Section 3) but that its related
// work builds entirely on — rectangle bin packing for wrapper/TAM
// co-optimization (arXiv 1008.3320) and its diagonal-length-heuristic,
// power-constrained extension (arXiv 1008.4446 / 1008.4448).
//
// The pipeline has two stages:
//
//  1. Wrapper design (staircase.go): for every core and every candidate
//     wrapper width w, Design_wrapper-style balanced scan-chain
//     partitioning (tam.DesignWrapper for cores with declared chains, its
//     exact splittable-scan fast path otherwise) yields the test time at
//     that width; pruning the non-improving widths leaves the Pareto
//     staircase of (width, time) configurations per core.
//  2. Scheduling (pack.go): every core test is a width × time rectangle
//     (any of its staircase configurations); the rectangles are packed
//     onto the W TAM lines by the diagonal-length heuristic of 1008.4446,
//     under an optional power budget (the session-based power model of
//     internal/power) and optional precedence edges.
//
// The result (schedule.go) carries the total test time, the per-core TAM
// assignment, the idle-bit overhead decomposed into wrapper idle and TAM
// idle (the quantities whose exclusion the paper acknowledges), and the
// expected-time-optimal abort-on-fail ordering via internal/sched.
// Everything is deterministic: no wall clock, no randomness, total
// tie-break orders everywhere, so the same SOC and options produce
// byte-identical schedules across runs, worker counts and daemons.
package coopt

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/tam"
)

// MaxTAMWidth is the widest TAM the sweeps and the serving layer accept.
// It is also the width ceiling behind lint rule SOC013: a hard core
// declaring more pre-stitched scan chains than this can never connect all
// of them, whatever wrapper configuration is chosen.
const MaxTAMWidth = 64

// Options steer one co-optimization run. The zero value is not valid: a
// positive TAMWidth is required.
type Options struct {
	// TAMWidth is the number of TAM lines available (1..MaxTAMWidth).
	TAMWidth int
	// PowerBudget caps the summed power of concurrently tested cores;
	// 0 disables the constraint. Units follow the per-core power proxy
	// (see corePower).
	PowerBudget int64
	// Precedence lists (before, after) core-name pairs: the "after" core's
	// test may not start before the "before" core's test finishes.
	Precedence [][2]string
}

// OptionsHash fingerprints every option that steers the schedule, in the
// style of atpg.OptionsHash: the serving layer combines it with the
// canonical SOC text to form the content address, so a changed width or
// budget never aliases a cached artifact.
func (o Options) OptionsHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "coopt|v1|tam=%d|power=%d", o.TAMWidth, o.PowerBudget)
	for _, p := range o.Precedence {
		fmt.Fprintf(h, "|prec=%s<%s", p[0], p[1])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Core is one schedulable core test: its tam-level test resources, the
// Pareto staircase of wrapper configurations, and its power proxy.
type Core struct {
	Name string
	Test tam.CoreTest
	// ScanCells is the module's internal scan-cell total. It is carried
	// separately from Test.Chains because synthesized ITC'02 profiles
	// publish only the total (Chains stays empty and the splittable fast
	// path partitions the cells), while Test.ScanCells() counts declared
	// chains only.
	ScanCells int
	Configs   []Config // ascending width, strictly decreasing time
	Power     int64
}

// UsefulPerPattern returns the core's per-pattern useful test data — the
// paper's Equation 4 frame: 2 bits per scan cell plus I + O + 2B
// wrapper-cell port bits.
func (c Core) UsefulPerPattern() int64 {
	return 2*int64(c.ScanCells) + int64(c.Test.Inputs) + int64(c.Test.Outputs) + 2*int64(c.Test.Bidirs)
}

// Useful returns the core's total useful test data in bits.
func (c Core) Useful() int64 {
	return c.UsefulPerPattern() * int64(c.Test.Patterns)
}

// corePower is the deterministic per-core power proxy used when no
// measured vectors exist (the ITC'02 profiles publish no cubes, so
// power.ShiftInWTC has nothing to chew on): every scan cell and wrapper
// cell toggles during shift, so the peak shift power scales with
// 2S + I + O + 2B — the same frame the TDV equations count.
func corePower(c Core) int64 { return c.UsefulPerPattern() }

// BuildCores derives the schedulable cores of an SOC: every module with a
// non-zero pattern count becomes a rectangle source with its wrapper
// staircase computed up to maxW. Modules without a test of their own
// (pure containers, T = 0) are skipped — there is nothing to schedule.
// The result is ordered by module pre-order, and each staircase is
// deterministic, so BuildCores is a pure function of the profile.
func BuildCores(s *core.SOC, maxW int) ([]Core, error) {
	if maxW < 1 || maxW > MaxTAMWidth {
		return nil, fmt.Errorf("coopt: TAM width %d outside 1..%d", maxW, MaxTAMWidth)
	}
	var cores []Core
	for _, m := range s.Modules() {
		if m.Patterns == 0 {
			continue
		}
		t := tam.CoreTest{
			Name:     m.Name,
			Inputs:   m.Inputs,
			Outputs:  m.Outputs,
			Bidirs:   m.Bidirs,
			Chains:   append([]int(nil), m.ScanChains...),
			Patterns: m.Patterns,
		}
		if len(m.ScanChains) > 0 && m.ScanChainSum() != m.ScanCells {
			return nil, fmt.Errorf("coopt: module %s declares chains summing to %d but s=%d (lint SOC008)",
				m.Name, m.ScanChainSum(), m.ScanCells)
		}
		cfgs, err := Staircase(t, m.ScanCells, maxW)
		if err != nil {
			return nil, fmt.Errorf("coopt: module %s: %w", m.Name, err)
		}
		c := Core{
			Name:      m.Name,
			Test:      t,
			ScanCells: m.ScanCells,
			Configs:   cfgs,
		}
		c.Power = corePower(c)
		cores = append(cores, c)
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("coopt: SOC %s has no module with a test (every T is 0)", s.Name)
	}
	return cores, nil
}

// Optimize runs the full co-optimization for one TAM width and returns
// the deterministic schedule.
func Optimize(s *core.SOC, opts Options) (*Schedule, error) {
	cores, err := BuildCores(s, opts.TAMWidth)
	if err != nil {
		return nil, err
	}
	pk, err := Pack(cores, opts.TAMWidth, opts.PowerBudget, opts.Precedence)
	if err != nil {
		return nil, err
	}
	return buildSchedule(s.Name, cores, pk, opts)
}

// FrontierPoint is one TAM width's outcome in a width sweep: the
// TAM-width vs test-time vs TDV trade-off the Pareto table reports.
type FrontierPoint struct {
	TAMWidth    int     `json:"tam_width"`
	TotalTime   int64   `json:"total_time"`
	LowerBound  int64   `json:"lower_bound"`
	LBRatio     float64 `json:"lb_ratio"`
	TDVBits     int64   `json:"tdv_bits"`
	UsefulBits  int64   `json:"useful_bits"`
	IdleBits    int64   `json:"idle_bits"`
	Utilization float64 `json:"utilization"`
	// Pareto marks the width as frontier-optimal: no narrower TAM in the
	// sweep achieves an equal or better test time.
	Pareto bool `json:"pareto"`
}

// Sweep packs the SOC at every width in widths (each 1..MaxTAMWidth),
// fanning the independent packings across workers via internal/par. The
// staircases are built once at the widest requested width and shared
// read-only, so the per-width work is exactly one packing. Results are
// index-addressed per worker and merged serially — the repo's
// workers-never-merge discipline — so the output is bit-identical for
// every worker count.
func Sweep(s *core.SOC, widths []int, workers int, budget int64) ([]FrontierPoint, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("coopt: empty width sweep")
	}
	maxW := 0
	for _, w := range widths {
		if w > maxW {
			maxW = w
		}
	}
	cores, err := BuildCores(s, maxW)
	if err != nil {
		return nil, err
	}
	points := make([]FrontierPoint, len(widths))
	_, err = par.ForEach(nil, len(widths), workers, func(i int) error {
		w := widths[i]
		sub := narrowCores(cores, w)
		pk, perr := Pack(sub, w, budget, nil)
		if perr != nil {
			return fmt.Errorf("width %d: %w", w, perr)
		}
		points[i] = FrontierPoint{
			TAMWidth:    w,
			TotalTime:   pk.TotalTime,
			LowerBound:  pk.LowerBound,
			LBRatio:     round4(ratio(pk.TotalTime, pk.LowerBound)),
			TDVBits:     pk.TDVBits,
			UsefulBits:  pk.UsefulBits,
			IdleBits:    pk.TDVBits - pk.UsefulBits,
			Utilization: round4(ratio(pk.UsefulBits, pk.TDVBits)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	markPareto(points)
	return points, nil
}

// narrowCores restricts every core's staircase to configurations fitting
// a TAM of width w. Each staircase starts at width 1 (any chain set
// concatenates onto a single wrapper chain), so the result is never empty.
func narrowCores(cores []Core, w int) []Core {
	out := make([]Core, len(cores))
	for i, c := range cores {
		n := sort.Search(len(c.Configs), func(k int) bool { return c.Configs[k].Width > w })
		out[i] = c
		out[i].Configs = c.Configs[:n]
	}
	return out
}

// markPareto flags the frontier: sweep points whose test time strictly
// beats every narrower (cheaper) TAM in the sweep.
func markPareto(points []FrontierPoint) {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return points[idx[a]].TAMWidth < points[idx[b]].TAMWidth })
	best := int64(-1)
	for _, i := range idx {
		if best < 0 || points[i].TotalTime < best {
			points[i].Pareto = true
			best = points[i].TotalTime
		}
	}
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// round4 keeps reported ratios at a fixed four decimals so the JSON
// artifact is byte-stable across platforms.
func round4(v float64) float64 { return float64(int64(v*10000+0.5)) / 10000 }
