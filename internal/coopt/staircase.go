package coopt

import (
	"fmt"

	"repro/internal/tam"
)

// Config is one Pareto-optimal wrapper configuration of a core: the TAM
// lines it consumes and the resulting test application time. The shift
// depths and per-pattern idle bits feed the schedule's idle accounting.
type Config struct {
	Width          int   `json:"width"`
	Time           int64 `json:"time"`
	MaxIn          int   `json:"-"`
	MaxOut         int   `json:"-"`
	IdlePerPattern int64 `json:"-"`
}

// Area returns the config's TAM occupancy in line-cycles — the rectangle
// the packer places.
func (c Config) Area() int64 { return int64(c.Width) * c.Time }

// Staircase computes the width→time staircase of Pareto-optimal wrapper
// configurations for one core: for every wrapper width 1..maxW the
// balanced partition is designed and timed, and only the widths that
// strictly improve the test time are kept. The result is the classic
// staircase of wrapper/TAM co-optimization (1008.3320 Figure "Design_
// wrapper"): ascending widths, strictly decreasing times, never empty
// (width 1 always fits — every chain concatenates onto one wrapper
// chain).
//
// Cores that declare their internal scan-chain lengths are partitioned
// with tam.DesignWrapper (the chains are unsplittable). Cores that only
// publish a scan-cell total — the synthesized ITC'02 profiles — are
// treated as freely partitionable scan (every cell its own unit chain),
// computed by the closed-form fast path designSplittable, which
// reproduces tam.DesignWrapper on unit chains exactly (see the
// differential test) without the per-cell LPT loop.
func Staircase(t tam.CoreTest, scanCells, maxW int) ([]Config, error) {
	if t.Patterns <= 0 {
		return nil, fmt.Errorf("core %s has no patterns", t.Name)
	}
	var cfgs []Config
	best := int64(-1)
	for w := 1; w <= maxW; w++ {
		var (
			wc  tam.WrapperChains
			err error
		)
		if len(t.Chains) > 0 {
			wc, err = tam.DesignWrapper(t, w)
		} else {
			wc, err = designSplittable(scanCells, t.Inputs, t.Outputs, t.Bidirs, w)
		}
		if err != nil {
			return nil, err
		}
		tt := tam.TestTime(t, wc)
		if best >= 0 && tt >= best {
			continue
		}
		best = tt
		cfgs = append(cfgs, Config{
			Width:          w,
			Time:           tt,
			MaxIn:          wc.MaxIn(),
			MaxOut:         wc.MaxOut(),
			IdlePerPattern: wc.IdleBitsPerPattern(),
		})
	}
	return cfgs, nil
}

// designSplittable is the splittable-scan fast path of tam.DesignWrapper:
// it produces exactly the WrapperChains DesignWrapper would return for a
// core whose scanCells internal cells are each their own length-1 chain,
// without iterating per cell or per wrapper-cell.
//
// Phase 1 of DesignWrapper (LPT over unit chains, argminSum tie-breaking
// on the lowest index) deals the cells round-robin. Phases 2a/2b (leveling
// the input/output wrapper cells, argmin on the lowest index) first fill
// the valley the round-robin left, then continue round-robin — so each
// direction ends perfectly balanced with the ceiling entries forming a
// prefix: chain k carries ⌈n/w⌉ items for k < n mod w and ⌊n/w⌋ after,
// where n is cells-plus-ports for that direction. balancedFill is that
// closed form; the differential test in staircase_test.go pins the
// equivalence against the real DesignWrapper on unit chains. Phase 2c
// (bidir cells) runs verbatim: bidir counts are genuine port counts,
// never the synthesizer's large isolation masses.
func designSplittable(scanCells, inputs, outputs, bidirs, w int) (tam.WrapperChains, error) {
	if w < 1 {
		return tam.WrapperChains{}, fmt.Errorf("coopt: wrapper width must be >= 1, got %d", w)
	}
	wc := tam.WrapperChains{
		In:  balancedFill(scanCells+inputs, w),
		Out: balancedFill(scanCells+outputs, w),
	}
	for i := 0; i < bidirs; i++ {
		k := argminSum(wc)
		wc.In[k]++
		wc.Out[k]++
	}
	return wc, nil
}

// balancedFill deals n unit items over w chains the way DesignWrapper's
// argmin loop does: ⌈n/w⌉ on the first n mod w chains, ⌊n/w⌋ on the rest.
func balancedFill(n, w int) []int {
	out := make([]int, w)
	base, extra := n/w, n%w
	for k := range out {
		out[k] = base
		if k < extra {
			out[k]++
		}
	}
	return out
}

// argminSum mirrors tam's unexported helper bit for bit: the fast path
// must break ties on the same (lowest) index to stay differential-test-
// identical to DesignWrapper.
func argminSum(wc tam.WrapperChains) int {
	best := 0
	for i := range wc.In {
		if wc.In[i]+wc.Out[i] < wc.In[best]+wc.Out[best] {
			best = i
		}
	}
	return best
}
