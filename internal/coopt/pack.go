package coopt

import (
	"fmt"
	"math"
	"sort"
)

// Placement is one core's slot in the packed schedule: the wrapper
// configuration chosen for it, the TAM lines it occupies, and its time
// window.
type Placement struct {
	Core   string `json:"core"`
	Width  int    `json:"width"`
	Lines  []int  `json:"lines"`
	Start  int64  `json:"start"`
	Finish int64  `json:"finish"`
	Power  int64  `json:"power"`
	// IdleBits is the wrapper-level idle data inside this rectangle: the
	// shifted volume minus the useful payload, over all patterns.
	IdleBits int64 `json:"idle_bits"`
}

// Packing is the raw packer output before the schedule report dresses it.
type Packing struct {
	TAMWidth   int
	TotalTime  int64
	LowerBound int64
	// TDVBits is the total data volume clocked on the TAM over the
	// schedule: every one of the W lines, both directions, for the whole
	// makespan — 2·W·TotalTime.
	TDVBits    int64
	UsefulBits int64
	// WrapperIdleBits is Σ per-placement IdleBits: padding inside the
	// rectangles because wrapper chains cannot always balance.
	WrapperIdleBits int64
	// TAMIdleBits is the slack outside the rectangles: lines allocated to
	// nobody while the schedule runs — 2·W·TotalTime − Σ 2·wᵢ·tᵢ.
	TAMIdleBits int64
	Placements  []Placement
}

// Pack schedules the cores onto a TAM of width w with the diagonal-length
// heuristic of 1008.4446: rectangles are placed in descending order of
// the diagonal length √(width² + time²) of their preferred (widest
// usable) configuration, each onto the lines that let it finish earliest,
// trying every staircase configuration and keeping the one with the
// earliest finish (ties: narrower width, then earlier start).
//
// Constraints: an optional power budget — the summed power proxy of
// concurrently running cores never exceeds it, enforced by delaying a
// core past the finishes of running cores (the session-style constraint
// of internal/power, applied to a 2D schedule) — and optional precedence
// edges, honored by only placing cores whose predecessors are already
// placed and starting them no earlier than the latest predecessor finish.
//
// Everything is deterministic: the order is a total order (diagonal, then
// name), line selection prefers lower indices, and no randomness or clock
// is consulted.
func Pack(cores []Core, w int, powerBudget int64, precedence [][2]string) (*Packing, error) {
	if w < 1 || w > MaxTAMWidth {
		return nil, fmt.Errorf("coopt: TAM width %d outside 1..%d", w, MaxTAMWidth)
	}
	byName := make(map[string]int, len(cores))
	for i, c := range cores {
		if _, dup := byName[c.Name]; dup {
			return nil, fmt.Errorf("coopt: duplicate core %q", c.Name)
		}
		if len(c.Configs) == 0 {
			return nil, fmt.Errorf("coopt: core %q has no wrapper configuration fitting width %d", c.Name, w)
		}
		if powerBudget > 0 && c.Power > powerBudget {
			return nil, fmt.Errorf("coopt: core %q alone exceeds the power budget (%d > %d)",
				c.Name, c.Power, powerBudget)
		}
		byName[c.Name] = i
	}
	preds, err := buildPrecedence(cores, byName, precedence)
	if err != nil {
		return nil, err
	}

	// Descending diagonal of the preferred (widest ≤ w, i.e. fastest)
	// configuration; name breaks ties so the order is total.
	order := make([]int, len(cores))
	for i := range order {
		order[i] = i
	}
	diag := make([]float64, len(cores))
	for i, c := range cores {
		pref := c.Configs[len(c.Configs)-1]
		diag[i] = math.Sqrt(float64(pref.Width)*float64(pref.Width) + float64(pref.Time)*float64(pref.Time))
	}
	sort.SliceStable(order, func(a, b int) bool {
		x, y := order[a], order[b]
		if diag[x] != diag[y] {
			return diag[x] > diag[y]
		}
		return cores[x].Name < cores[y].Name
	})

	pk := &Packing{TAMWidth: w}
	free := make([]int64, w) // per-line next-free time
	placedAt := make(map[string]Placement, len(cores))
	placed := 0
	done := make([]bool, len(cores))
	for placed < len(cores) {
		// Next ready core in the heuristic order: all predecessors placed.
		pick := -1
		for _, i := range order {
			if done[i] {
				continue
			}
			ready := true
			for _, p := range preds[i] {
				if !done[p] {
					ready = false
					break
				}
			}
			if ready {
				pick = i
				break
			}
		}
		if pick < 0 {
			return nil, fmt.Errorf("coopt: precedence cycle among the unplaced cores")
		}
		c := cores[pick]
		floor := int64(0) // earliest legal start: predecessors must finish
		for _, p := range preds[pick] {
			if f := placedAt[cores[p].Name].Finish; f > floor {
				floor = f
			}
		}
		best, ok := Placement{}, false
		var bestLines []int
		for _, cfg := range c.Configs {
			lines, start := earliestSlot(free, cfg.Width, floor)
			start = powerFeasibleStart(pk.Placements, start, cfg.Time, c.Power, powerBudget)
			finish := start + cfg.Time
			if !ok || finish < best.Finish ||
				(finish == best.Finish && cfg.Width < best.Width) ||
				(finish == best.Finish && cfg.Width == best.Width && start < best.Start) {
				best = Placement{
					Core: c.Name, Width: cfg.Width, Start: start, Finish: finish,
					Power:    c.Power,
					IdleBits: cfg.IdlePerPattern * int64(c.Test.Patterns),
				}
				bestLines = lines
				ok = true
			}
		}
		best.Lines = bestLines
		for _, l := range bestLines {
			free[l] = best.Finish
		}
		pk.Placements = append(pk.Placements, best)
		placedAt[c.Name] = best
		done[pick] = true
		placed++
		if best.Finish > pk.TotalTime {
			pk.TotalTime = best.Finish
		}
	}

	sort.Slice(pk.Placements, func(a, b int) bool {
		x, y := pk.Placements[a], pk.Placements[b]
		if x.Start != y.Start {
			return x.Start < y.Start
		}
		return x.Core < y.Core
	})
	pk.LowerBound = LowerBound(cores, w)
	pk.TDVBits = 2 * int64(w) * pk.TotalTime
	var rectBits int64
	for _, p := range pk.Placements {
		rectBits += 2 * int64(p.Width) * (p.Finish - p.Start)
		pk.WrapperIdleBits += p.IdleBits
	}
	for _, c := range cores {
		pk.UsefulBits += c.Useful()
	}
	pk.TAMIdleBits = pk.TDVBits - rectBits
	return pk, nil
}

// earliestSlot picks the width lines that admit the earliest start at or
// after floor: the lines with the smallest next-free times (lowest index
// on ties), whose maximum is the start. Returned lines are ascending.
func earliestSlot(free []int64, width int, floor int64) (lines []int, start int64) {
	idx := make([]int, len(free))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return free[idx[a]] < free[idx[b]] })
	lines = append([]int(nil), idx[:width]...)
	sort.Ints(lines)
	start = floor
	for _, l := range lines {
		if free[l] > start {
			start = free[l]
		}
	}
	return lines, start
}

// powerFeasibleStart returns the earliest start ≥ start at which running
// the core for dur under the budget is legal: whenever the concurrent
// power sum would overflow, the start slides to the next finish of an
// overlapping placement (event-point scan — the optimum never lies
// between finishes).
func powerFeasibleStart(placed []Placement, start, dur, power, budget int64) int64 {
	if budget <= 0 || power <= 0 {
		return start
	}
	for {
		over, nextEvent := int64(0), int64(math.MaxInt64)
		for _, p := range placed {
			if p.Start < start+dur && p.Finish > start {
				over += p.Power
				if p.Finish < nextEvent {
					nextEvent = p.Finish
				}
			}
		}
		if over+power <= budget {
			return start
		}
		start = nextEvent
	}
}

// buildPrecedence resolves the name pairs onto core indices and rejects
// unknown names and self-edges (cycles surface during packing: a cycle
// leaves cores permanently not-ready).
func buildPrecedence(cores []Core, byName map[string]int, precedence [][2]string) ([][]int, error) {
	preds := make([][]int, len(cores))
	for _, pr := range precedence {
		b, ok := byName[pr[0]]
		if !ok {
			return nil, fmt.Errorf("coopt: precedence names unknown core %q", pr[0])
		}
		a, ok := byName[pr[1]]
		if !ok {
			return nil, fmt.Errorf("coopt: precedence names unknown core %q", pr[1])
		}
		if a == b {
			return nil, fmt.Errorf("coopt: precedence self-edge on %q", pr[0])
		}
		preds[a] = append(preds[a], b)
	}
	return preds, nil
}

// LowerBound is the classic packing bound the acceptance gate measures
// against: no schedule beats the bottleneck core (its fastest
// configuration on the full TAM), and no schedule beats spreading the
// total minimum rectangle area perfectly over the W lines.
func LowerBound(cores []Core, w int) int64 {
	var bottleneck, area int64
	for _, c := range cores {
		fast := c.Configs[len(c.Configs)-1].Time // widest = fastest
		if fast > bottleneck {
			bottleneck = fast
		}
		minArea := c.Configs[0].Area()
		for _, cfg := range c.Configs[1:] {
			if a := cfg.Area(); a < minArea {
				minArea = a
			}
		}
		area += minArea
	}
	lb := (area + int64(w) - 1) / int64(w)
	if bottleneck > lb {
		lb = bottleneck
	}
	return lb
}
