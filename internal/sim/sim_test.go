package sim

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

const c17Bench = `
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func mustParse(t *testing.T, name, src string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseBenchString(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// c17Ref computes c17's outputs directly from the boolean equations.
func c17Ref(g1, g2, g3, g6, g7 bool) (g22, g23 bool) {
	nand := func(a, b bool) bool { return !(a && b) }
	n10 := nand(g1, g3)
	n11 := nand(g3, g6)
	n16 := nand(g2, n11)
	n19 := nand(n11, g7)
	return nand(n10, n16), nand(n16, n19)
}

func TestSimulatorMatchesReferenceExhaustively(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	s := New(c)
	if s.NumPseudoInputs() != 5 || s.NumPseudoOutputs() != 2 {
		t.Fatalf("frames: %d/%d", s.NumPseudoInputs(), s.NumPseudoOutputs())
	}
	for bits := 0; bits < 32; bits++ {
		stim := make(logic.Cube, 5)
		var in [5]bool
		for i := 0; i < 5; i++ {
			in[i] = bits>>uint(i)&1 == 1
			stim[i] = logic.FromBool(in[i])
		}
		resp := s.Simulate(stim)
		w22, w23 := c17Ref(in[0], in[1], in[2], in[3], in[4])
		if resp[0] != logic.FromBool(w22) || resp[1] != logic.FromBool(w23) {
			t.Fatalf("bits=%05b: got %v, want %v%v", bits, resp, logic.FromBool(w22), logic.FromBool(w23))
		}
	}
}

func TestSimulatorXPropagation(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	s := New(c)
	// All X in -> all X out.
	stim := logic.NewCube(5)
	resp := s.Simulate(stim)
	for i, v := range resp {
		if v != logic.X {
			t.Errorf("output %d = %v with all-X inputs", i, v)
		}
	}
	// G3=0 forces G10=G11=1 regardless of other inputs:
	// G22 = NAND(1, G16), G16 = NAND(G2, 1) = !G2. So G2=0 -> G16=1 -> G22=0.
	stim[2] = logic.Zero
	stim[1] = logic.Zero
	resp = s.Simulate(stim)
	if resp[0] != logic.Zero {
		t.Errorf("G22 = %v, want 0 (controlled by G3=0,G2=0)", resp[0])
	}
}

func TestSimulatorFaultValuePropagation(t *testing.T) {
	// A D on an input must propagate through sensitized paths.
	c := mustParse(t, "c17", c17Bench)
	s := New(c)
	stim, _ := logic.ParseCube("11111")
	stim[0] = logic.D // G1 carries a fault effect
	resp := s.Simulate(stim)
	// G10 = NAND(D,1) = D̄; G16 = NAND(1, NAND(1,1)=0) = 1;
	// G22 = NAND(D̄,1) = D.
	if resp[0] != logic.D {
		t.Errorf("G22 = %v, want D", resp[0])
	}
	if resp[1].Faulty() {
		t.Errorf("G23 = %v, must not carry the fault", resp[1])
	}
}

func TestEvalGateAllTypes(t *testing.T) {
	one, zero := logic.One, logic.Zero
	cases := []struct {
		t    netlist.GateType
		in   []logic.V
		want logic.V
	}{
		{netlist.Buf, []logic.V{one}, one},
		{netlist.Not, []logic.V{one}, zero},
		{netlist.And, []logic.V{one, one, zero}, zero},
		{netlist.Nand, []logic.V{one, one, one}, zero},
		{netlist.Or, []logic.V{zero, zero, one}, one},
		{netlist.Nor, []logic.V{zero, zero}, one},
		{netlist.Xor, []logic.V{one, one, one}, one},
		{netlist.Xnor, []logic.V{one, zero}, zero},
		{netlist.Const0, nil, zero},
		{netlist.Const1, nil, one},
	}
	for _, c := range cases {
		if got := EvalGate(c.t, c.in); got != c.want {
			t.Errorf("EvalGate(%v, %v) = %v, want %v", c.t, c.in, got, c.want)
		}
	}
}

func TestEvalGatePanicsOnInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EvalGate(Input) did not panic")
		}
	}()
	EvalGate(netlist.Input, nil)
}

func TestPSimAgreesWithSimulator(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	s := New(c)
	p := NewPSim(c)
	r := rand.New(rand.NewSource(11))

	batch := make([]logic.Cube, 64)
	for k := range batch {
		cube := make(logic.Cube, 5)
		for i := range cube {
			cube[i] = logic.FromBool(r.Intn(2) == 1)
		}
		batch[k] = cube
	}
	if n := p.Load(batch); n != 64 {
		t.Fatalf("Load = %d", n)
	}
	p.Run()
	if p.Mask() != ^uint64(0) {
		t.Error("full batch mask wrong")
	}
	for k, cube := range batch {
		want := s.Simulate(cube)
		got := p.Response(k)
		if got.String() != want.String() {
			t.Fatalf("pattern %d: PSim %v, Simulator %v", k, got, want)
		}
	}
}

func TestPSimPartialBatch(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	p := NewPSim(c)
	cube, _ := logic.ParseCube("10110")
	p.Load([]logic.Cube{cube, cube, cube})
	p.Run()
	if p.BatchSize() != 3 {
		t.Errorf("BatchSize = %d", p.BatchSize())
	}
	if p.Mask() != 0b111 {
		t.Errorf("Mask = %b", p.Mask())
	}
	a, b := p.Response(0), p.Response(2)
	if a.String() != b.String() {
		t.Error("identical patterns disagree")
	}
	words := p.ResponseWords()
	if len(words) != 2 {
		t.Errorf("ResponseWords len = %d", len(words))
	}
}

func TestPSimXLoadsAsZero(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	p := NewPSim(c)
	withX := logic.NewCube(5) // all X
	zeros, _ := logic.ParseCube("00000")
	p.Load([]logic.Cube{withX, zeros})
	p.Run()
	if p.Response(0).String() != p.Response(1).String() {
		t.Error("X must load as 0")
	}
}

func TestPSimPanics(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	p := NewPSim(c)
	mustPanic(t, "empty batch", func() { p.Load(nil) })
	mustPanic(t, "wrong width", func() { p.Load([]logic.Cube{logic.NewCube(3)}) })
	cube := logic.NewCube(5)
	p.Load([]logic.Cube{cube})
	p.Run()
	mustPanic(t, "response out of range", func() { p.Response(5) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	f()
}

const counterBench = `
INPUT(EN)
OUTPUT(Q1)
B0 = DFF(N0)
B1 = DFF(N1)
N0 = XOR(B0, EN)
C0 = AND(B0, EN)
N1 = XOR(B1, C0)
Q1 = BUF(B1)
`

func TestSeqSimCounter(t *testing.T) {
	c := mustParse(t, "counter", counterBench)
	s := NewSeqSim(c)
	s.ResetState(logic.Zero)
	en := logic.Cube{logic.One}
	// A 2-bit counter: after 2 increments Q1 (bit1) must be 1.
	states := []string{"10", "01", "11", "00"}
	for i, want := range states {
		s.Step(en)
		if got := s.State().String(); got != want {
			t.Fatalf("cycle %d: state %s, want %s", i, got, want)
		}
	}
	// EN=0 holds state.
	before := s.State().String()
	s.Step(logic.Cube{logic.Zero})
	if s.State().String() != before {
		t.Error("state changed with EN=0")
	}
}

func TestSeqSimMatchesScanInterpretation(t *testing.T) {
	// One Step from a known state must equal one full-scan Simulate whose
	// PPI section is that state.
	c := mustParse(t, "counter", counterBench)
	seq := NewSeqSim(c)
	full := New(c)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		st := logic.Cube{logic.FromBool(r.Intn(2) == 1), logic.FromBool(r.Intn(2) == 1)}
		in := logic.Cube{logic.FromBool(r.Intn(2) == 1)}
		seq.SetState(0, st[0])
		seq.SetState(1, st[1])
		out := seq.Step(in)

		stim := append(in.Clone(), st...)
		resp := full.Simulate(stim)
		// Response frame: PO Q1, then DFF data inputs (N0, N1).
		if resp[0] != out[0] {
			t.Fatalf("PO mismatch: scan %v, seq %v", resp[0], out[0])
		}
		next := seq.State()
		if resp[1] != next[0] || resp[2] != next[1] {
			t.Fatalf("next-state mismatch: scan %v%v, seq %v", resp[1], resp[2], next)
		}
	}
}

func TestSeqSimStepPanicsOnBadWidth(t *testing.T) {
	c := mustParse(t, "counter", counterBench)
	s := NewSeqSim(c)
	mustPanic(t, "bad step width", func() { s.Step(logic.NewCube(5)) })
}
