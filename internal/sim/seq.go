package sim

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// SeqSim is a cycle-accurate sequential simulator: DFF state is held across
// Step calls instead of being scanned in. It models the functional (non-test)
// operation of a core and is used to sanity-check scan equivalence: one Step
// equals one full-scan pattern whose PPI part is the current state.
type SeqSim struct {
	inner *Simulator
	state []logic.V // per DFF, in DFF declaration order
}

// NewSeqSim returns a sequential simulator with all state initialized to X.
func NewSeqSim(c *netlist.Circuit) *SeqSim {
	s := &SeqSim{inner: New(c)}
	s.state = make([]logic.V, len(c.DFFs()))
	for i := range s.state {
		s.state[i] = logic.X
	}
	return s
}

// ResetState forces every flip-flop to the given value (commonly Zero to
// model a global reset, or X for power-on uncertainty).
func (s *SeqSim) ResetState(v logic.V) {
	for i := range s.state {
		s.state[i] = v
	}
}

// SetState assigns the state of the i-th flip-flop (declaration order).
func (s *SeqSim) SetState(i int, v logic.V) { s.state[i] = v }

// State returns a copy of the current flip-flop state vector.
func (s *SeqSim) State() logic.Cube {
	out := make(logic.Cube, len(s.state))
	copy(out, s.state)
	return out
}

// Step applies one clock cycle: primary inputs are driven with in, the
// combinational logic settles, primary outputs are sampled, and every DFF
// captures its data input. It returns the primary output values.
func (s *SeqSim) Step(in logic.Cube) logic.Cube {
	c := s.inner.Circuit()
	if len(in) != len(c.Inputs()) {
		panic(fmt.Sprintf("sim: Step input length %d != %d primary inputs", len(in), len(c.Inputs())))
	}
	stim := make(logic.Cube, 0, len(in)+len(s.state))
	stim = append(stim, in...)
	stim = append(stim, s.state...)
	s.inner.ApplyStimulus(stim)
	s.inner.Run()

	out := make(logic.Cube, len(c.Outputs()))
	for i, id := range c.Outputs() {
		out[i] = s.inner.Value(id)
	}
	for i, d := range c.DFFs() {
		s.state[i] = s.inner.Value(c.Gate(d).Fanin[0])
	}
	return out
}

// Value exposes the value of an arbitrary net after the last Step.
func (s *SeqSim) Value(id netlist.GateID) logic.V { return s.inner.Value(id) }
