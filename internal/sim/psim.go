package sim

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// WordBits is the number of patterns evaluated in parallel by PSim.
const WordBits = 64

// EvalGateWord evaluates one combinational gate over bit-parallel two-valued
// fanin words (one bit per pattern).
func EvalGateWord(t netlist.GateType, in []uint64) uint64 {
	switch t {
	case netlist.Buf:
		return in[0]
	case netlist.Not:
		return ^in[0]
	case netlist.And:
		r := ^uint64(0)
		for _, w := range in {
			r &= w
		}
		return r
	case netlist.Nand:
		r := ^uint64(0)
		for _, w := range in {
			r &= w
		}
		return ^r
	case netlist.Or:
		var r uint64
		for _, w := range in {
			r |= w
		}
		return r
	case netlist.Nor:
		var r uint64
		for _, w := range in {
			r |= w
		}
		return ^r
	case netlist.Xor:
		var r uint64
		for _, w := range in {
			r ^= w
		}
		return r
	case netlist.Xnor:
		var r uint64
		for _, w := range in {
			r ^= w
		}
		return ^r
	case netlist.Const0:
		return 0
	case netlist.Const1:
		return ^uint64(0)
	}
	panic(fmt.Sprintf("sim: EvalGateWord on non-combinational gate type %v", t))
}

// PSim is a 64-way bit-parallel two-valued simulator. Bit k of every word
// belongs to pattern k of the currently loaded batch. Patterns must be fully
// specified; use Cube.Fill before loading.
type PSim struct {
	c       *netlist.Circuit
	words   []uint64
	ppis    []netlist.GateID
	ppos    []netlist.GateID
	n       int // patterns loaded in the current batch (1..64)
	scratch []uint64
}

// NewPSim returns a bit-parallel simulator for the finalized circuit c.
func NewPSim(c *netlist.Circuit) *PSim {
	if !c.Finalized() {
		panic("sim: circuit not finalized")
	}
	return &PSim{
		c:     c,
		words: make([]uint64, c.NumGates()),
		ppis:  c.PseudoInputs(),
		ppos:  c.PseudoOutputs(),
	}
}

// Circuit returns the circuit being simulated.
func (p *PSim) Circuit() *netlist.Circuit { return p.c }

// Load packs up to 64 fully specified stimulus cubes into the input words.
// X bits are conservatively loaded as 0. It returns the number of patterns
// loaded (len(batch), which must be 1..64).
func (p *PSim) Load(batch []logic.Cube) int {
	if len(batch) == 0 || len(batch) > WordBits {
		panic(fmt.Sprintf("sim: PSim.Load batch size %d out of range 1..%d", len(batch), WordBits))
	}
	for i := range p.words {
		p.words[i] = 0
	}
	for k, cube := range batch {
		if len(cube) != len(p.ppis) {
			panic(fmt.Sprintf("sim: pattern %d length %d != %d pseudo inputs", k, len(cube), len(p.ppis)))
		}
		bit := uint64(1) << uint(k)
		for i, id := range p.ppis {
			if cube[i] == logic.One {
				p.words[id] |= bit
			}
		}
	}
	p.n = len(batch)
	return p.n
}

// Run evaluates the combinational logic for the loaded batch.
func (p *PSim) Run() {
	for _, id := range p.c.TopoOrder() {
		g := p.c.Gate(id)
		if cap(p.scratch) < len(g.Fanin) {
			p.scratch = make([]uint64, len(g.Fanin))
		}
		in := p.scratch[:len(g.Fanin)]
		for j, f := range g.Fanin {
			in[j] = p.words[f]
		}
		p.words[id] = EvalGateWord(g.Type, in)
	}
}

// Word returns the 64-pattern value word of gate id. Bits at positions at or
// beyond the batch size are unspecified.
func (p *PSim) Word(id netlist.GateID) uint64 { return p.words[id] }

// SetWord overwrites the value word of a gate; used by fault simulation for
// fault injection between Run passes.
func (p *PSim) SetWord(id netlist.GateID, w uint64) { p.words[id] = w }

// BatchSize returns the number of patterns in the current batch.
func (p *PSim) BatchSize() int { return p.n }

// Mask returns the word mask covering the valid patterns of the batch.
func (p *PSim) Mask() uint64 {
	if p.n >= WordBits {
		return ^uint64(0)
	}
	return (uint64(1) << uint(p.n)) - 1
}

// Response extracts the response cube of pattern k over the PseudoOutputs.
func (p *PSim) Response(k int) logic.Cube {
	if k < 0 || k >= p.n {
		panic(fmt.Sprintf("sim: Response(%d) outside batch of %d", k, p.n))
	}
	r := make(logic.Cube, len(p.ppos))
	bit := uint64(1) << uint(k)
	for i, id := range p.ppos {
		r[i] = logic.FromBool(p.words[id]&bit != 0)
	}
	return r
}

// ResponseWords returns the response words over the PseudoOutputs frame,
// one word per observation site.
func (p *PSim) ResponseWords() []uint64 {
	r := make([]uint64, len(p.ppos))
	for i, id := range p.ppos {
		r[i] = p.words[id]
	}
	return r
}
