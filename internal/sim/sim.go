// Package sim provides logic simulation over finalized netlist circuits:
//
//   - Simulator: a five-valued (0, 1, X, D, D̄) levelized full-scan
//     simulator, shared by ATPG implication and response computation.
//   - PSim: a 64-way bit-parallel two-valued simulator used by fault
//     simulation and random-pattern evaluation.
//   - SeqSim: a cycle-accurate sequential simulator for non-scan operation.
//
// All simulators use the full-scan convention of package netlist: the
// stimulus frame is PseudoInputs (primary inputs then DFF outputs) and the
// response frame is PseudoOutputs (primary outputs then DFF data inputs).
package sim

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// EvalGate evaluates a single combinational gate over five-valued fanin
// values. It panics on non-combinational gate types.
func EvalGate(t netlist.GateType, in []logic.V) logic.V {
	switch t {
	case netlist.Buf:
		return in[0]
	case netlist.Not:
		return logic.Not(in[0])
	case netlist.And:
		return logic.AndN(in...)
	case netlist.Nand:
		return logic.Not(logic.AndN(in...))
	case netlist.Or:
		return logic.OrN(in...)
	case netlist.Nor:
		return logic.Not(logic.OrN(in...))
	case netlist.Xor:
		return logic.XorN(in...)
	case netlist.Xnor:
		return logic.Not(logic.XorN(in...))
	case netlist.Const0:
		return logic.Zero
	case netlist.Const1:
		return logic.One
	}
	panic(fmt.Sprintf("sim: EvalGate on non-combinational gate type %v", t))
}

// Simulator is a five-valued levelized simulator over one circuit.
// The zero value is not usable; construct with New.
type Simulator struct {
	c       *netlist.Circuit
	values  []logic.V
	ppis    []netlist.GateID
	ppos    []netlist.GateID
	scratch []logic.V
}

// New returns a simulator for the finalized circuit c.
func New(c *netlist.Circuit) *Simulator {
	if !c.Finalized() {
		panic("sim: circuit not finalized")
	}
	s := &Simulator{
		c:      c,
		values: make([]logic.V, c.NumGates()),
		ppis:   c.PseudoInputs(),
		ppos:   c.PseudoOutputs(),
	}
	s.Reset()
	return s
}

// Circuit returns the circuit being simulated.
func (s *Simulator) Circuit() *netlist.Circuit { return s.c }

// Reset sets every signal to X.
func (s *Simulator) Reset() {
	for i := range s.values {
		s.values[i] = logic.X
	}
}

// Set assigns a value to a source gate (primary input or DFF output).
// Assigning non-source gates is allowed — ATPG uses it for fault injection —
// but the value will be overwritten by Run unless the caller handles it.
func (s *Simulator) Set(id netlist.GateID, v logic.V) { s.values[id] = v }

// Value returns the current value of gate id.
func (s *Simulator) Value(id netlist.GateID) logic.V { return s.values[id] }

// ApplyStimulus assigns a cube over the PseudoInputs frame. The cube length
// must equal the number of pseudo inputs.
func (s *Simulator) ApplyStimulus(c logic.Cube) {
	if len(c) != len(s.ppis) {
		panic(fmt.Sprintf("sim: stimulus length %d != %d pseudo inputs", len(c), len(s.ppis)))
	}
	for i, id := range s.ppis {
		s.values[id] = c[i]
	}
}

// Run evaluates all combinational gates in levelized order.
func (s *Simulator) Run() {
	for _, id := range s.c.TopoOrder() {
		g := s.c.Gate(id)
		if cap(s.scratch) < len(g.Fanin) {
			s.scratch = make([]logic.V, len(g.Fanin))
		}
		in := s.scratch[:len(g.Fanin)]
		for j, f := range g.Fanin {
			in[j] = s.values[f]
		}
		s.values[id] = EvalGate(g.Type, in)
	}
}

// Response returns the current values over the PseudoOutputs frame.
func (s *Simulator) Response() logic.Cube {
	r := make(logic.Cube, len(s.ppos))
	for i, id := range s.ppos {
		r[i] = s.values[id]
	}
	return r
}

// Simulate applies stimulus, runs, and returns the response — the everyday
// single-pattern entry point.
func (s *Simulator) Simulate(stimulus logic.Cube) logic.Cube {
	s.ApplyStimulus(stimulus)
	s.Run()
	return s.Response()
}

// NumPseudoInputs returns the stimulus frame width.
func (s *Simulator) NumPseudoInputs() int { return len(s.ppis) }

// NumPseudoOutputs returns the response frame width.
func (s *Simulator) NumPseudoOutputs() int { return len(s.ppos) }
