package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bench89"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// TestPSimMatchesSimulatorOnStandins cross-checks the bit-parallel and the
// five-valued simulators on realistic generated circuits, batch after
// batch — the two independent evaluation paths every higher layer rests on.
func TestPSimMatchesSimulatorOnStandins(t *testing.T) {
	for _, name := range []string{"s713", "s953"} {
		prof, ok := bench89.ProfileByName(name)
		if !ok {
			t.Fatalf("profile %s missing", name)
		}
		c := bench89.MustGenerate(prof)
		s := New(c)
		p := NewPSim(c)
		r := rand.New(rand.NewSource(33))
		width := s.NumPseudoInputs()

		batch := make([]logic.Cube, 64)
		for k := range batch {
			v := make(logic.Cube, width)
			for i := range v {
				v[i] = logic.FromBool(r.Intn(2) == 1)
			}
			batch[k] = v
		}
		p.Load(batch)
		p.Run()
		for _, k := range []int{0, 1, 31, 63} {
			want := s.Simulate(batch[k])
			got := p.Response(k)
			if got.String() != want.String() {
				t.Fatalf("%s pattern %d: PSim %v != Simulator %v", name, k, got, want)
			}
		}
	}
}

// TestEvalGateWordMatchesEvalGate checks the two gate evaluators agree on
// every gate type over random two-valued inputs.
func TestEvalGateWordMatchesEvalGate(t *testing.T) {
	types := []netlist.GateType{
		netlist.Buf, netlist.Not, netlist.And, netlist.Nand,
		netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor,
		netlist.Const0, netlist.Const1,
	}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tt := types[r.Intn(len(types))]
		nf := tt.MinFanin()
		if tt.MaxFanin() < 0 {
			nf += r.Intn(3)
		}
		vals := make([]logic.V, nf)
		words := make([]uint64, nf)
		// Pick a random bit position and fill both representations.
		bit := uint(r.Intn(64))
		for i := range vals {
			b := r.Intn(2) == 1
			vals[i] = logic.FromBool(b)
			if b {
				words[i] = 1 << bit
			}
			// Noise on other bits must not influence the checked bit.
			words[i] |= r.Uint64() &^ (1 << bit)
		}
		want := EvalGate(tt, vals) == logic.One
		got := EvalGateWord(tt, words)&(1<<bit) != 0
		return want == got
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestSimulatorRefinementMonotone: refining X inputs to binary values never
// flips an already-binary internal signal — the monotonicity PODEM's
// search-space pruning relies on.
func TestSimulatorRefinementMonotone(t *testing.T) {
	prof, _ := bench89.ProfileByName("s713")
	c := bench89.MustGenerate(prof)
	s := New(c)
	r := rand.New(rand.NewSource(5))
	width := s.NumPseudoInputs()

	for trial := 0; trial < 50; trial++ {
		partial := make(logic.Cube, width)
		for i := range partial {
			switch r.Intn(3) {
			case 0:
				partial[i] = logic.Zero
			case 1:
				partial[i] = logic.One
			default:
				partial[i] = logic.X
			}
		}
		s.Simulate(partial)
		before := make([]logic.V, c.NumGates())
		for id := netlist.GateID(0); int(id) < c.NumGates(); id++ {
			before[id] = s.Value(id)
		}
		// Refine all X bits.
		full := partial.Fill(func(int) logic.V { return logic.FromBool(r.Intn(2) == 1) })
		s.Simulate(full)
		for id := netlist.GateID(0); int(id) < c.NumGates(); id++ {
			if before[id].Binary() && s.Value(id) != before[id] {
				t.Fatalf("trial %d: gate %s flipped from %v to %v under refinement",
					trial, c.Gate(id).Name, before[id], s.Value(id))
			}
		}
	}
}
