package faults

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

func mustParse(t *testing.T, name, src string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseBenchString(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const invChain = `
INPUT(A)
OUTPUT(Y)
N1 = NOT(A)
N2 = NOT(N1)
Y = BUF(N2)
`

func TestUniverseInverterChain(t *testing.T) {
	c := mustParse(t, "chain", invChain)
	fs := Universe(c)
	// Lines: A, N1, N2, Y — all single fanout, so 4 stems x 2 = 8 faults.
	if len(fs) != 8 {
		t.Fatalf("universe = %d faults, want 8", len(fs))
	}
	for i := 1; i < len(fs); i++ {
		if !fs[i-1].Less(fs[i]) {
			t.Fatal("universe not sorted")
		}
	}
}

func TestCollapseInverterChain(t *testing.T) {
	// In an inverter/buffer chain every stem fault collapses into one of
	// exactly two classes (even and odd parity).
	c := mustParse(t, "chain", invChain)
	reps, classOf := Collapse(c, Universe(c))
	if len(reps) != 2 {
		t.Fatalf("collapsed to %d classes, want 2", len(reps))
	}
	// A/SA0 and Y/SA0's class must differ from A/SA1's.
	a, _ := c.Lookup("A")
	y, _ := c.Lookup("Y")
	a0 := classOf[Fault{a, StemPin, logic.Zero}]
	a1 := classOf[Fault{a, StemPin, logic.One}]
	y0 := classOf[Fault{y, StemPin, logic.Zero}]
	if a0 == a1 {
		t.Error("opposite polarities collapsed together")
	}
	if y0 != a0 {
		t.Error("Y/SA0 should collapse with A/SA0 through NOT-NOT-BUF")
	}
}

const branchCircuit = `
INPUT(A)
INPUT(B)
OUTPUT(Y)
OUTPUT(Z)
S = AND(A, B)
Y = NOT(S)
Z = BUF(S)
`

func TestUniverseEnumeratesBranches(t *testing.T) {
	c := mustParse(t, "branch", branchCircuit)
	fs := Universe(c)
	// Stems: A, B, S, Y, Z = 10 faults. S has fanout 2, so branch pins
	// Y.0 and Z.0 add 4 more.
	if len(fs) != 14 {
		t.Fatalf("universe = %d faults, want 14", len(fs))
	}
	nBranch := 0
	for _, f := range fs {
		if f.Pin != StemPin {
			nBranch++
		}
	}
	if nBranch != 4 {
		t.Errorf("branch faults = %d, want 4", nBranch)
	}
}

func TestCollapseBranchesFoldIntoGates(t *testing.T) {
	c := mustParse(t, "branch", branchCircuit)
	reps, classOf := Collapse(c, Universe(c))
	// Expected classes: A/SA1, B/SA1, {A/SA0, B/SA0, S/SA0}... S/SA0 is
	// the AND-output fault; branch S->Y SA0 ≡ Y/SA1 (NOT), S->Z SA0 ≡ Z/SA0.
	y, _ := c.Lookup("Y")
	z, _ := c.Lookup("Z")
	if classOf[Fault{y, 0, logic.Zero}] != classOf[Fault{y, StemPin, logic.One}] {
		t.Error("branch SA0 into NOT must collapse with NOT output SA1")
	}
	if classOf[Fault{z, 0, logic.Zero}] != classOf[Fault{z, StemPin, logic.Zero}] {
		t.Error("branch SA0 into BUF must collapse with BUF output SA0")
	}
	// The two branch SA0 faults must NOT collapse with each other: they
	// fold into different gates.
	if classOf[Fault{y, 0, logic.Zero}] == classOf[Fault{z, 0, logic.Zero}] {
		t.Error("distinct branch faults collapsed across the stem")
	}
	if len(reps) >= 14 {
		t.Errorf("collapsing had no effect: %d reps", len(reps))
	}
}

const gateRules = `
INPUT(A)
INPUT(B)
OUTPUT(YA)
OUTPUT(YN)
OUTPUT(YO)
OUTPUT(YR)
YA = AND(A, B)
YN = NAND(A, B)
YO = OR(A, B)
YR = NOR(A, B)
`

func TestCollapseGateRules(t *testing.T) {
	c := mustParse(t, "rules", gateRules)
	_, classOf := Collapse(c, Universe(c))
	ya, _ := c.Lookup("YA")
	yn, _ := c.Lookup("YN")
	yo, _ := c.Lookup("YO")
	yr, _ := c.Lookup("YR")

	// A and B have fanout 4, so gate input faults are branch faults.
	if classOf[Fault{ya, 0, logic.Zero}] != classOf[Fault{ya, StemPin, logic.Zero}] {
		t.Error("AND: in SA0 !≡ out SA0")
	}
	if classOf[Fault{yn, 0, logic.Zero}] != classOf[Fault{yn, StemPin, logic.One}] {
		t.Error("NAND: in SA0 !≡ out SA1")
	}
	if classOf[Fault{yo, 0, logic.One}] != classOf[Fault{yo, StemPin, logic.One}] {
		t.Error("OR: in SA1 !≡ out SA1")
	}
	if classOf[Fault{yr, 0, logic.One}] != classOf[Fault{yr, StemPin, logic.Zero}] {
		t.Error("NOR: in SA1 !≡ out SA0")
	}
	// Non-controlling-value input faults must stay distinct from stems.
	if classOf[Fault{ya, 0, logic.One}] == classOf[Fault{ya, StemPin, logic.One}] {
		t.Error("AND: in SA1 wrongly collapsed with out SA1")
	}
	// Both AND input SA0 branch faults collapse together via the output.
	if classOf[Fault{ya, 0, logic.Zero}] != classOf[Fault{ya, 1, logic.Zero}] {
		t.Error("AND: the two input SA0 faults must share a class")
	}
}

func TestXorDoesNotCollapse(t *testing.T) {
	src := `
INPUT(A)
INPUT(B)
OUTPUT(Y)
OUTPUT(Z)
Y = XOR(A, B)
Z = BUF(A)
`
	c := mustParse(t, "xor", src)
	_, classOf := Collapse(c, Universe(c))
	y, _ := c.Lookup("Y")
	// XOR input branch faults must remain their own classes.
	f := Fault{y, 0, logic.Zero}
	if classOf[f] != f {
		t.Error("XOR input fault collapsed")
	}
}

func TestCollapsedUniverseAndString(t *testing.T) {
	c := mustParse(t, "branch", branchCircuit)
	reps := CollapsedUniverse(c)
	if len(reps) == 0 || len(reps) >= 14 {
		t.Errorf("CollapsedUniverse = %d", len(reps))
	}
	s, _ := c.Lookup("S")
	str := Fault{s, StemPin, logic.One}.String(c)
	if !strings.Contains(str, "S/SA1") {
		t.Errorf("String = %q", str)
	}
	y, _ := c.Lookup("Y")
	str = Fault{y, 0, logic.Zero}.String(c)
	if !strings.Contains(str, "S->Y.0/SA0") {
		t.Errorf("branch String = %q", str)
	}
}

func TestInCone(t *testing.T) {
	c := mustParse(t, "branch", branchCircuit)
	fs := Universe(c)
	y, _ := c.Lookup("Y")
	cone := c.ExtractCone(y)
	sub := InCone(fs, &cone)
	if len(sub) == 0 || len(sub) >= len(fs) {
		t.Fatalf("InCone = %d of %d", len(sub), len(fs))
	}
	for _, f := range sub {
		found := false
		for _, g := range cone.Gates {
			if f.Gate == g {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("fault %v outside cone", f.String(c))
		}
	}
	// Z's buf gate must not appear.
	z, _ := c.Lookup("Z")
	for _, f := range sub {
		if f.Gate == z {
			t.Error("Z fault inside Y cone")
		}
	}
}

func TestCollapseClassesAreConsistent(t *testing.T) {
	// Property: classOf is idempotent and representatives map to themselves.
	c := mustParse(t, "rules", gateRules)
	fs := Universe(c)
	reps, classOf := Collapse(c, fs)
	for _, r := range reps {
		if classOf[r] != r {
			t.Fatalf("representative %v maps to %v", r.String(c), classOf[r].String(c))
		}
	}
	for _, f := range fs {
		if classOf[classOf[f]] != classOf[f] {
			t.Fatalf("classOf not idempotent at %v", f.String(c))
		}
	}
	// Every class representative must be a member of the universe.
	inUniverse := make(map[Fault]bool, len(fs))
	for _, f := range fs {
		inUniverse[f] = true
	}
	for _, r := range reps {
		if !inUniverse[r] {
			t.Fatalf("representative %v not in universe", r.String(c))
		}
	}
}
