// Package faults implements the single stuck-at fault model used by ATPG and
// fault simulation: fault universe enumeration over gate output stems and
// fanout branches, and classical structural equivalence collapsing.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// StemPin marks a fault on a gate's output stem (as opposed to one of its
// input branch pins).
const StemPin = -1

// Fault is a single stuck-at fault on a circuit line. Pin == StemPin places
// the fault on the output of Gate; Pin >= 0 places it on the Pin-th input
// branch of Gate (meaningful when the driving net has fanout > 1).
type Fault struct {
	Gate  netlist.GateID
	Pin   int
	Stuck logic.V // Zero or One
}

// String renders the fault with net names resolved against c.
func (f Fault) String(c *netlist.Circuit) string {
	g := c.Gate(f.Gate)
	if f.Pin == StemPin {
		return fmt.Sprintf("%s/SA%s", g.Name, f.Stuck)
	}
	drv := c.Gate(g.Fanin[f.Pin])
	return fmt.Sprintf("%s->%s.%d/SA%s", drv.Name, g.Name, f.Pin, f.Stuck)
}

// Less imposes a deterministic total order on faults.
func (f Fault) Less(o Fault) bool {
	if f.Gate != o.Gate {
		return f.Gate < o.Gate
	}
	if f.Pin != o.Pin {
		return f.Pin < o.Pin
	}
	return f.Stuck < o.Stuck
}

// Universe enumerates the full structural stuck-at fault list of c:
//
//   - both polarities on every gate output stem (including primary inputs
//     and DFF outputs, which are the scan-controllable lines), and
//   - both polarities on every gate input pin whose driving net has
//     fanout greater than one (fanout branches).
//
// Input pins on single-fanout nets are structurally identical to the driver
// stem and are not enumerated separately. The result is sorted.
func Universe(c *netlist.Circuit) []Fault {
	if !c.Finalized() {
		panic("faults: circuit not finalized")
	}
	var fs []Fault
	for id := netlist.GateID(0); int(id) < c.NumGates(); id++ {
		g := c.Gate(id)
		// Stem faults on every driven net that somebody observes: skip
		// nets with no fanout that are not outputs (dangling); they are
		// untestable by construction and would pollute coverage.
		if len(c.Fanout(id)) > 0 || isOutput(c, id) {
			fs = append(fs, Fault{id, StemPin, logic.Zero}, Fault{id, StemPin, logic.One})
		}
		for pin, drv := range g.Fanin {
			if len(c.Fanout(drv)) > 1 {
				fs = append(fs, Fault{id, pin, logic.Zero}, Fault{id, pin, logic.One})
			}
		}
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].Less(fs[j]) })
	return fs
}

func isOutput(c *netlist.Circuit, id netlist.GateID) bool {
	for _, o := range c.Outputs() {
		if o == id {
			return true
		}
	}
	return false
}

// Collapse partitions the fault list into structural equivalence classes and
// returns one representative per class (sorted), plus the mapping from every
// fault to its class representative.
//
// The rules are the classical ones:
//
//	BUF:  in SA-v        ≡ out SA-v
//	NOT:  in SA-v        ≡ out SA-(¬v)
//	AND:  any in SA-0    ≡ out SA-0
//	NAND: any in SA-0    ≡ out SA-1
//	OR:   any in SA-1    ≡ out SA-1
//	NOR:  any in SA-1    ≡ out SA-0
//	DFF:  in SA-v        ≡ out SA-v is NOT applied: in full-scan testing the
//	      DFF input and output lie in different capture frames.
//
// plus the wiring rule: a branch-pin fault on a single-fanout net is the
// same line as the driver stem (Universe already avoids enumerating those,
// so the wiring rule here instead folds a gate input fault on a
// single-fanout line into the driver's stem fault).
func Collapse(c *netlist.Circuit, fs []Fault) (reps []Fault, classOf map[Fault]Fault) {
	idx := make(map[Fault]int, len(fs))
	for i, f := range fs {
		idx[f] = i
	}
	uf := newUnionFind(len(fs))

	union := func(a, b Fault) {
		ia, oka := idx[a]
		ib, okb := idx[b]
		if oka && okb {
			uf.union(ia, ib)
		}
	}

	for id := netlist.GateID(0); int(id) < c.NumGates(); id++ {
		g := c.Gate(id)
		if !g.Type.Combinational() {
			continue
		}
		for pin, drv := range g.Fanin {
			// The fault "as seen at this gate input": a branch fault if
			// the driver has fanout > 1, else the driver's stem fault.
			inFault := func(v logic.V) Fault {
				if len(c.Fanout(drv)) > 1 {
					return Fault{id, pin, v}
				}
				return Fault{drv, StemPin, v}
			}
			switch g.Type {
			case netlist.Buf:
				union(inFault(logic.Zero), Fault{id, StemPin, logic.Zero})
				union(inFault(logic.One), Fault{id, StemPin, logic.One})
			case netlist.Not:
				union(inFault(logic.Zero), Fault{id, StemPin, logic.One})
				union(inFault(logic.One), Fault{id, StemPin, logic.Zero})
			case netlist.And:
				union(inFault(logic.Zero), Fault{id, StemPin, logic.Zero})
			case netlist.Nand:
				union(inFault(logic.Zero), Fault{id, StemPin, logic.One})
			case netlist.Or:
				union(inFault(logic.One), Fault{id, StemPin, logic.One})
			case netlist.Nor:
				union(inFault(logic.One), Fault{id, StemPin, logic.Zero})
			}
		}
	}

	// Deterministic representative: the smallest fault in each class.
	minOf := make(map[int]int) // root -> index of minimal fault
	for i := range fs {
		r := uf.find(i)
		if m, ok := minOf[r]; !ok || fs[i].Less(fs[m]) {
			minOf[r] = i
		}
	}
	classOf = make(map[Fault]Fault, len(fs))
	for i, f := range fs {
		classOf[f] = fs[minOf[uf.find(i)]]
	}
	seen := make(map[Fault]bool, len(minOf))
	for _, m := range minOf {
		if !seen[fs[m]] {
			seen[fs[m]] = true
			reps = append(reps, fs[m])
		}
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i].Less(reps[j]) })
	return reps, classOf
}

// CollapsedUniverse is the common composition: Universe followed by Collapse,
// returning only the representatives.
func CollapsedUniverse(c *netlist.Circuit) []Fault {
	reps, _ := Collapse(c, Universe(c))
	return reps
}

// InCone filters fs down to the faults whose site lies inside the given
// cone (the site gate, for branch faults the gate holding the pin).
func InCone(fs []Fault, cone *netlist.Cone) []Fault {
	in := make(map[netlist.GateID]bool, len(cone.Gates))
	for _, g := range cone.Gates {
		in[g] = true
	}
	var out []Fault
	for _, f := range fs {
		if in[f.Gate] {
			out = append(out, f)
		}
	}
	return out
}

// unionFind is a plain weighted quick-union with path halving.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}
