package report

import (
	"strings"
	"testing"
)

func TestIntFormatting(t *testing.T) {
	cases := map[int64]string{
		0:            "0",
		7:            "7",
		999:          "999",
		1000:         "1,000",
		28538030:     "28,538,030",
		144302301808: "144,302,301,808",
		-45183:       "-45,183",
	}
	for n, want := range cases {
		if got := Int(n); got != want {
			t.Errorf("Int(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestPctAndRatio(t *testing.T) {
	if got := Pct(-0.593); got != "-59.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(0.055); got != "+5.5%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Ratio(2.8713); got != "2.87" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Fixed2(1.291); got != "1.29" {
		t.Errorf("Fixed2 = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := New("Table 1: demo", "Core", "I", "O", "TDV")
	tb.AddRow("s713", "35", "23", "4,992")
	tb.AddRow("s953", "16", "23", "8,245")
	tb.AddFooter("SOC", "", "", "45,183")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows + rule + footer = 7 lines.
	if len(lines) != 7 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Table 1: demo" {
		t.Errorf("title = %q", lines[0])
	}
	if !strings.Contains(lines[1], "Core") || !strings.Contains(lines[1], "TDV") {
		t.Errorf("header = %q", lines[1])
	}
	// Numeric columns right-aligned: the 4,992 and 8,245 must end at the
	// same column.
	if len(lines[3]) != len(lines[4]) {
		t.Errorf("rows not aligned:\n%s", out)
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("missing rule: %q", lines[2])
	}
}

func TestTableWithoutTitleOrFooter(t *testing.T) {
	tb := New("", "A", "B")
	tb.AddRow("x", "1")
	out := tb.String()
	if strings.HasPrefix(out, "\n") {
		t.Error("empty title produced a leading newline")
	}
	if strings.Count(out, "---") != 1 {
		t.Error("footerless table must have exactly one rule")
	}
}

func TestRaggedRows(t *testing.T) {
	tb := New("t", "A", "B", "C")
	tb.AddRow("only-one")
	out := tb.String()
	if !strings.Contains(out, "only-one") {
		t.Error("short row lost")
	}
}
