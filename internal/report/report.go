// Package report renders the experiment results as aligned plain-text
// tables in the style of the paper's Tables 1-4, with thousands-separated
// bit counts and signed percentages.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
	footers [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a body row; missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddFooter appends a footer row, separated from the body by a rule.
func (t *Table) AddFooter(cells ...string) {
	t.footers = append(t.footers, cells)
}

// String renders the table. Columns are left-aligned for the first column
// and right-aligned otherwise (numbers dominate).
func (t *Table) String() string {
	width := len(t.headers)
	all := [][]string{t.headers}
	all = append(all, t.rows...)
	all = append(all, t.footers...)
	for _, r := range all {
		if len(r) > width {
			width = len(r)
		}
	}
	colw := make([]int, width)
	for _, r := range all {
		for i, c := range r {
			if len(c) > colw[i] {
				colw[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < width; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", colw[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", colw[i], c)
			}
		}
		// Trim trailing spaces for clean output.
		s := b.String()
		trimmed := strings.TrimRight(s, " ")
		b.Reset()
		b.WriteString(trimmed)
		b.WriteByte('\n')
	}
	rule := func() {
		n := 0
		for i, w := range colw {
			n += w
			if i > 0 {
				n += 2
			}
		}
		b.WriteString(strings.Repeat("-", n))
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	rule()
	for _, r := range t.rows {
		writeRow(r)
	}
	if len(t.footers) > 0 {
		rule()
		for _, r := range t.footers {
			writeRow(r)
		}
	}
	return b.String()
}

// Int formats an integer with thousands separators ("28,538,030").
func Int(n int64) string {
	neg := n < 0
	if neg {
		n = -n
	}
	s := fmt.Sprintf("%d", n)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// Pct formats a fraction as a signed percentage with one decimal ("-59.3%").
func Pct(f float64) string {
	return fmt.Sprintf("%+.1f%%", f*100)
}

// Ratio formats a ratio with two decimals ("2.87").
func Ratio(f float64) string {
	return fmt.Sprintf("%.2f", f)
}

// Fixed2 formats a float with two decimals (for normalized stdev columns).
func Fixed2(f float64) string {
	return fmt.Sprintf("%.2f", f)
}
