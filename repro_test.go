package repro

import (
	"strings"
	"testing"
)

func TestFacadeATPGFlow(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
n = NAND(a, b)
y = NOT(n)
`
	c, err := ParseBenchString("tiny", src)
	if err != nil {
		t.Fatal(err)
	}
	if n := FaultUniverseSize(c); n == 0 {
		t.Error("no faults")
	}
	res := RunATPG(c, DefaultATPGOptions())
	if res.Coverage != 1 {
		t.Errorf("coverage = %v", res.Coverage)
	}
	var b strings.Builder
	if err := WriteBench(&b, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "NAND") {
		t.Error("WriteBench output wrong")
	}
}

func TestFacadeConeExample(t *testing.T) {
	m := ConeExample()
	if m.MonolithicStimulusBits() != 20000 || m.ModularStimulusBits() != 15000 {
		t.Error("cone example numbers wrong")
	}
}

func TestFacadeSOCProfiles(t *testing.T) {
	if SOC1().TDVModular() != 45183 {
		t.Error("SOC1 wrong")
	}
	if SOC2().TDVModular() != 1344585 {
		t.Error("SOC2 wrong")
	}
}

func TestFacadeISOCost(t *testing.T) {
	got := ISOCost(WrapperSpec{Inputs: 175, Outputs: 212}, []WrapperSpec{{Inputs: 62, Outputs: 25}})
	if got != 474 {
		t.Errorf("ISOCost = %d, want 474", got)
	}
}

func TestRenderTable1MatchesPaperNumbers(t *testing.T) {
	out := RenderTable1()
	for _, want := range []string{"45,183", "129,816", "51,085", "2.87", "1.13"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTable2MatchesPaperNumbers(t *testing.T) {
	out := RenderTable2()
	for _, want := range []string{"1,344,585", "2,986,200", "1,428,320", "2.22", "1.06"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTable3MatchesPaperNumbers(t *testing.T) {
	out := RenderTable3()
	for _, want := range []string{"28,538,030", "9,521,850", "10,120,080", "39,069"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTable4MatchesPaperNumbers(t *testing.T) {
	out, err := RenderTable4()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"d695", "a586710",
		"2,987,712", "144,302,301,808",
		"-59.3%", "-99.3%", "+38.6%", // the two extremes and g12710's increase
		"950,273,712",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFigures(t *testing.T) {
	f1 := RenderFigure1()
	if !strings.Contains(f1, "20,000") {
		t.Errorf("Figure 1 missing 20,000 bits:\n%s", f1)
	}
	f2 := RenderFigure2()
	if !strings.Contains(f2, "15,000") || !strings.Contains(f2, "25%") {
		t.Errorf("Figure 2 wrong:\n%s", f2)
	}
	f3 := RenderFigure3()
	if !strings.Contains(f3, "Core2") || !strings.Contains(f3, "Core19") {
		t.Errorf("Figure 3 wrong:\n%s", f3)
	}
	if !strings.Contains(RenderFigure4(), "s713") {
		t.Error("Figure 4 wrong")
	}
	if !strings.Contains(RenderFigure5(), "s15850") {
		t.Error("Figure 5 wrong")
	}
}

func TestAnalyzeConesFacade(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(x)
OUTPUT(y)
x = AND(a, b)
y = OR(b, c)
`
	circ, err := ParseBenchString("two-cones", src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeCones(circ, DefaultATPGOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Profiles) != 2 {
		t.Errorf("profiles = %d", len(a.Profiles))
	}
	if a.OverlapPairs != 1 {
		t.Errorf("overlap pairs = %d (cones share input b)", a.OverlapPairs)
	}
}

func TestIsolateFacade(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"
	c, err := ParseBenchString("inv", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Isolate(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InputCells) != 1 || len(res.OutputCells) != 1 {
		t.Error("isolation cells wrong")
	}
}

// TestLiveSOC1Experiment is the end-to-end Equation 2 validation: the
// monolithic pattern count of the flattened SOC must meet or exceed the
// maximum per-core count, and modular TDV must undercut monolithic TDV.
func TestLiveSOC1Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("live experiment skipped in -short mode")
	}
	r, err := LiveSOC1(LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Eq2Holds() {
		t.Errorf("Eq.2 violated: T_mono=%d < max core T=%d", r.TMono, r.MaxCoreT)
	}
	if r.MonoCoverage < 0.95 {
		t.Errorf("monolithic coverage %.3f too low", r.MonoCoverage)
	}
	for _, c := range r.Cores {
		if c.Coverage < 0.95 {
			t.Errorf("core %s coverage %.3f too low", c.Name, c.Coverage)
		}
	}
	if r.Report.TDVModular >= r.Report.TDVMonoAct {
		t.Errorf("modular TDV %d not below monolithic %d", r.Report.TDVModular, r.Report.TDVMonoAct)
	}
	if r.Report.RatioVsActual < 1.2 {
		t.Errorf("reduction ratio %.2f too small for SOC1's pattern variation", r.Report.RatioVsActual)
	}
	out := RenderLive(r)
	if !strings.Contains(out, "Eq.2 check") {
		t.Error("RenderLive missing the Eq.2 verdict")
	}
}

func TestLiveSOC2ExperimentScaled(t *testing.T) {
	if testing.Short() {
		t.Skip("live experiment skipped in -short mode")
	}
	r, err := LiveSOC2(LiveOptions{GateScale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Eq2Holds() {
		t.Errorf("Eq.2 violated: T_mono=%d < max core T=%d", r.TMono, r.MaxCoreT)
	}
	if r.Report.TDVModular >= r.Report.TDVMonoAct {
		t.Error("modular TDV not below monolithic")
	}
}

func TestLiveOptionsDefaults(t *testing.T) {
	o := LiveOptions{}.withDefaults()
	if o.GateScale != 1 || o.InterconnectFraction != 0.45 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if o.ATPG.BacktrackLimit == 0 {
		t.Error("ATPG defaults not applied")
	}
	o2 := LiveOptions{GateScale: 3}.withDefaults()
	if o2.GateScale != 1 {
		t.Error("out-of-range scale not clamped")
	}
}

func TestLiveUnknownCore(t *testing.T) {
	if _, err := liveSOC(nil, "X", []string{"c6288"}, LiveOptions{}); err == nil {
		t.Error("unknown core accepted")
	}
}

func TestTable4Data(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Computed.TDVMonoOpt != r.Published.TDVMonoOpt {
			t.Errorf("%s: opt mismatch", r.Name)
		}
		if r.Computed.TDVModular != r.Published.ConsistentModular() {
			t.Errorf("%s: modular mismatch", r.Name)
		}
	}
}
