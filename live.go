package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/atpg"
	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/soc"
)

// LiveOptions configures the live end-to-end experiments, which rebuild
// the paper's SOC1/SOC2 study with real ATPG runs instead of published
// pattern counts: generate the stand-in cores, run per-core ATPG, flatten
// the SOC with isolation ripped out, run monolithic ATPG, and compare.
type LiveOptions struct {
	// ATPG are the test generation settings (DefaultATPGOptions if zero).
	ATPG ATPGOptions
	// GateScale scales the stand-in circuits' gate counts in (0, 1];
	// 1.0 reproduces the full stand-ins, smaller values speed up the
	// experiment at the cost of structural fidelity. Zero means 1.0.
	GateScale float64
	// Seed drives the deterministic pseudo-random inter-core wiring.
	Seed int64
	// InterconnectFraction is the fraction of core inputs wired to other
	// cores' outputs in the flattened design (default 0.45).
	InterconnectFraction float64
	// Obs receives the experiment's instrumentation when non-nil: phase
	// spans (generate, per-core ATPG, flatten, monolithic ATPG), per-core
	// result events carrying the TDV inputs, and everything the ATPG and
	// fault-sim layers emit underneath. It is also propagated into the
	// ATPG options unless those already carry their own collector.
	Obs *obs.Collector
	// Checkpoint enables per-stage checkpoint/resume for the experiment's
	// ATPG runs. Its Path is a prefix: the stage for core i writes
	// Path+".core<i>", the monolithic stage writes Path+".mono", so an
	// interrupted experiment resumes each completed stage from its own
	// file. Every/Resume apply to each stage unchanged.
	Checkpoint *atpg.CheckpointConfig
	// Workers bounds how many per-core ATPG jobs run concurrently, and is
	// forwarded to the ATPG stages (unless ATPG.Workers is already set) so
	// their fault simulation shards too. 0 (the default) resolves to
	// runtime.NumCPU(); 1 forces the fully serial experiment. Results are
	// bit-identical for every setting — per-core jobs are independent and
	// merge back in core order.
	Workers int
}

func (o LiveOptions) withDefaults() LiveOptions {
	if o.ATPG == (ATPGOptions{}) {
		o.ATPG = DefaultATPGOptions()
	}
	if o.ATPG.Obs == nil {
		o.ATPG.Obs = o.Obs
	}
	if o.ATPG.Workers == 0 {
		o.ATPG.Workers = o.Workers
	}
	if o.GateScale <= 0 || o.GateScale > 1 {
		o.GateScale = 1
	}
	if o.InterconnectFraction == 0 {
		o.InterconnectFraction = 0.45
	}
	return o
}

// LiveCore is the measured profile of one core in a live experiment.
type LiveCore struct {
	Name      string
	Inputs    int
	Outputs   int
	ScanCells int
	Patterns  int
	Coverage  float64
}

// LiveResult is the outcome of a live SOC experiment.
type LiveResult struct {
	Name  string
	Cores []LiveCore
	// CoreSeconds is the wall-clock ATPG time of each core, parallel to
	// Cores. Timing is measurement noise, kept out of LiveCore so Cores
	// stays directly comparable across runs with different worker counts.
	CoreSeconds []float64
	// Workers is the resolved per-core concurrency bound the run used.
	Workers int
	// TMono is the measured monolithic pattern count on the flattened SOC.
	TMono        int
	MonoCoverage float64
	// MaxCoreT is max_i T_i; Equation 2 asserts TMono >= MaxCoreT.
	MaxCoreT int
	// SOC is the TDV model built from the measured values; its Analyze
	// report carries the monolithic/modular comparison.
	SOC    *SOC
	Report Report
}

// Eq2Holds reports whether the measured monolithic pattern count is at
// least the maximum per-core count — the paper's Equation 2.
func (r *LiveResult) Eq2Holds() bool { return r.TMono >= r.MaxCoreT }

// LiveSOC1 runs the live SOC1 experiment (paper Section 5.1, Table 1):
// s713, s953 and three s1423 instances.
func LiveSOC1(opts LiveOptions) (*LiveResult, error) {
	return LiveSOC1Context(context.Background(), opts)
}

// LiveSOC1Context is LiveSOC1 with cancellation: the per-core and
// monolithic ATPG stages honour ctx at per-fault granularity, and with
// LiveOptions.Checkpoint set each stage checkpoints and resumes from its
// own derived file.
func LiveSOC1Context(ctx context.Context, opts LiveOptions) (*LiveResult, error) {
	return liveSOC(ctx, "SOC1", []string{"s713", "s953", "s1423", "s1423", "s1423"}, opts)
}

// LiveSOC2 runs the live SOC2 experiment (paper Section 5.1, Table 2):
// s953, s5378, s13207 and s15850. At GateScale 1 this is the most
// expensive experiment in the repository (a ~7000-gate monolithic ATPG
// run); pass a smaller GateScale for quick runs.
func LiveSOC2(opts LiveOptions) (*LiveResult, error) {
	return LiveSOC2Context(context.Background(), opts)
}

// LiveSOC2Context is LiveSOC2 with cancellation and per-stage
// checkpoint/resume; see LiveSOC1Context.
func LiveSOC2Context(ctx context.Context, opts LiveOptions) (*LiveResult, error) {
	return liveSOC(ctx, "SOC2", []string{"s953", "s5378", "s13207", "s15850"}, opts)
}

func liveSOC(ctx context.Context, name string, coreNames []string, opts LiveOptions) (*LiveResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	// stageOpts derives the ATPG options for one named pipeline stage; with
	// experiment-level checkpointing each stage gets its own file so the
	// options-hash validation can bind a checkpoint to its exact stage.
	stageOpts := func(stage string) atpg.Options {
		o := opts.ATPG
		if opts.Checkpoint != nil {
			cc := *opts.Checkpoint
			cc.Path = opts.Checkpoint.Path + "." + stage
			o.Checkpoint = &cc
		}
		return o
	}
	col := opts.Obs
	spanAll := col.StartSpan("live.experiment")
	if col.Tracing() {
		col.Emit("live.start",
			obs.F("soc", name),
			obs.F("cores", len(coreNames)),
			obs.F("gate_scale", opts.GateScale),
			obs.F("seed", opts.Seed),
			obs.F("workers", par.Workers(opts.Workers)))
	}
	res := &LiveResult{Name: name}

	spanGen := col.StartSpan("live.generate")
	var circuits []*netlist.Circuit
	for i, cn := range coreNames {
		prof, ok := bench89.ProfileByName(cn)
		if !ok {
			return nil, fmt.Errorf("repro: unknown core %q", cn)
		}
		// Distinct instances of the same core get distinct structures,
		// like distinct placements of the same RTL would.
		prof.Seed += int64(i) * 1013
		prof.Gates = int(float64(prof.Gates) * opts.GateScale)
		if min := prof.Outputs + 8; prof.Gates < min {
			prof.Gates = min
		}
		c, err := bench89.GenerateObserved(prof, col)
		if err != nil {
			return nil, err
		}
		circuits = append(circuits, c)
	}
	spanGen.End()

	// Per-core ATPG: each core tested as a wrapped, stand-alone unit, with
	// up to Workers cores in flight at once (dynamic dispatch, so one big
	// core does not serialize the small ones behind it). Each job writes
	// its LiveCore into an index-addressed slot and instruments a forked
	// collector; the forks merge back into the parent registry serially,
	// in core order, so manifests are deterministic. Each per-core event
	// carries the exact TDV-formula inputs (terminal and scan-cell counts
	// plus the measured pattern count).
	spanCores := col.StartSpan("live.percore")
	workers := par.Workers(opts.Workers)
	res.Workers = workers
	col.Gauge("live.workers").Set(int64(workers))
	type coreOut struct {
		lc  LiveCore
		reg *obs.Registry
		sec float64
	}
	outs := make([]coreOut, len(circuits))
	failIdx, ferr := par.ForEach(ctx, len(circuits), workers, func(i int) error {
		c := circuits[i]
		coreCol, coreReg := col.Fork()
		outs[i].reg = coreReg
		spanCore := coreCol.StartSpan("live.core")
		so := stageOpts(fmt.Sprintf("core%d", i+1))
		so.Obs = coreCol
		// lintgo:allow GO002 CoreSeconds reports wall time; results ignore it.
		start := time.Now()
		r, err := atpg.GenerateContext(ctx, c, so)
		// lintgo:allow GO002 CoreSeconds reports wall time; results ignore it.
		outs[i].sec = time.Since(start).Seconds()
		spanCore.End()
		if err != nil {
			return fmt.Errorf("repro: live %s core %d (%s): %w", name, i+1, coreNames[i], err)
		}
		st := c.ComputeStats()
		lc := LiveCore{
			Name:      fmt.Sprintf("Core%d(%s)", i+1, coreNames[i]),
			Inputs:    st.Inputs,
			Outputs:   st.Outputs,
			ScanCells: st.DFFs,
			Patterns:  r.PatternCount(),
			Coverage:  r.Coverage,
		}
		outs[i].lc = lc
		if coreCol.Tracing() {
			coreCol.Emit("live.core.result",
				obs.F("soc", name),
				obs.F("core", lc.Name),
				obs.F("inputs", lc.Inputs),
				obs.F("outputs", lc.Outputs),
				obs.F("scan_cells", lc.ScanCells),
				obs.F("patterns", lc.Patterns),
				obs.F("coverage", lc.Coverage),
				obs.F("seconds", outs[i].sec))
		}
		return nil
	})
	// Fold the per-core registries into the parent, in core order.
	for i := range outs {
		col.Metrics().Merge(outs[i].reg)
	}
	if ferr != nil {
		// Dispatch is in index order, so every core below the lowest
		// failed index completed; keep that prefix — exactly what the
		// serial loop committed before its first error.
		for i := 0; i < failIdx && i < len(outs); i++ {
			res.Cores = append(res.Cores, outs[i].lc)
			res.CoreSeconds = append(res.CoreSeconds, outs[i].sec)
			if outs[i].lc.Patterns > res.MaxCoreT {
				res.MaxCoreT = outs[i].lc.Patterns
			}
		}
		spanCores.End()
		spanAll.End()
		return res, ferr
	}
	for i := range outs {
		res.Cores = append(res.Cores, outs[i].lc)
		res.CoreSeconds = append(res.CoreSeconds, outs[i].sec)
		if outs[i].lc.Patterns > res.MaxCoreT {
			res.MaxCoreT = outs[i].lc.Patterns
		}
	}
	spanCores.End()

	// Monolithic: flatten with isolation ripped out and rerun ATPG.
	spanFlat := col.StartSpan("live.flatten")
	flat, err := soc.Flatten(name+"-flat", circuits, soc.FlattenOptions{
		Seed:                 opts.Seed,
		InterconnectFraction: opts.InterconnectFraction,
	})
	spanFlat.End()
	if err != nil {
		return nil, err
	}
	spanMono := col.StartSpan("live.mono")
	mono, err := atpg.GenerateContext(ctx, flat, stageOpts("mono"))
	spanMono.End()
	if err != nil {
		spanAll.End()
		return res, fmt.Errorf("repro: live %s monolithic ATPG: %w", name, err)
	}
	res.TMono = mono.PatternCount()
	res.MonoCoverage = mono.Coverage
	if col.Tracing() {
		col.Emit("live.mono.result",
			obs.F("soc", name),
			obs.F("patterns", res.TMono),
			obs.F("coverage", res.MonoCoverage),
			obs.F("max_core_t", res.MaxCoreT))
	}

	// Build the TDV model from the measured values.
	fs := flat.ComputeStats()
	top := &core.Module{
		Name:                  "Top",
		Params:                core.Params{Inputs: fs.Inputs, Outputs: fs.Outputs},
		PortsTesterAccessible: true,
	}
	for _, lc := range res.Cores {
		top.Children = append(top.Children, &core.Module{
			Name: lc.Name,
			Params: core.Params{
				Inputs:    lc.Inputs,
				Outputs:   lc.Outputs,
				ScanCells: lc.ScanCells,
				Patterns:  lc.Patterns,
			},
		})
	}
	res.SOC = &core.SOC{Name: name + "-live", Top: top, TMono: res.TMono}
	res.Report = res.SOC.Analyze()
	if col.Tracing() {
		col.Emit("live.result",
			obs.F("soc", name),
			obs.F("t_mono", res.TMono),
			obs.F("max_core_t", res.MaxCoreT),
			obs.F("eq2_holds", res.Eq2Holds()),
			obs.F("tdv_modular", res.Report.TDVModular),
			obs.F("tdv_mono_opt", res.Report.TDVMonoOpt))
	}
	spanAll.End()
	return res, nil
}

// RenderLive renders a live experiment result in the Table 1/2 layout,
// with the Equation 2 verdict underneath.
func RenderLive(r *LiveResult) string {
	out := renderSOCTable(fmt.Sprintf("Live %s experiment (measured ATPG pattern counts)", r.Name), r.SOC)
	out += fmt.Sprintf("Eq.2 check: T_mono = %d >= max core T = %d: %v (mono coverage %.1f%%)\n",
		r.TMono, r.MaxCoreT, r.Eq2Holds(), r.MonoCoverage*100)
	return out
}
