package repro

// Extension benches: features beyond the paper's own evaluation that its
// text motivates — TAM architectures and test time (the dimension the
// paper's TDV analysis deliberately excludes), and dynamic compaction
// (mentioned in Section 3 as the alternative to the static compaction the
// generator uses).

import (
	"fmt"
	"testing"

	"repro/internal/atpg"
	"repro/internal/bench89"
	"repro/internal/bist"
	"repro/internal/compress"
	"repro/internal/diag"
	"repro/internal/faults"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/tam"
)

// soc2CoreTests builds TAM core descriptions from SOC2's published profile,
// with each core's scan cells split into four balanced internal chains.
func soc2CoreTests() []tam.CoreTest {
	var cores []tam.CoreTest
	for _, m := range SOC2().Modules()[1:] {
		c := tam.CoreTest{
			Name:     m.Name,
			Inputs:   m.Inputs,
			Outputs:  m.Outputs,
			Bidirs:   m.Bidirs,
			Patterns: m.Patterns,
		}
		if m.ScanCells > 0 {
			per := m.ScanCells / 4
			rem := m.ScanCells - 3*per
			c.Chains = []int{rem, per, per, per}
		}
		cores = append(cores, c)
	}
	return cores
}

// BenchmarkExtensionTAMArchitectures schedules SOC2's cores on the four
// classic TAM architectures and reports makespan and idle volume — the
// test-time dimension the paper's analysis excludes.
func BenchmarkExtensionTAMArchitectures(b *testing.B) {
	cores := soc2CoreTests()
	render := func() string {
		t := report.New("Extension: TAM architectures for SOC2's cores (W=16, 2 buses)",
			"Architecture", "Makespan (cycles)", "Shifted bits", "Useful bits", "Idle bits")
		for _, arch := range []tam.Architecture{tam.Multiplexing, tam.Daisychain, tam.TestBus, tam.Distribution} {
			s, err := tam.BuildSchedule(arch, cores, 16, 2)
			if err != nil {
				b.Fatal(err)
			}
			t.AddRow(arch.String(), report.Int(s.Makespan), report.Int(s.ShiftedBits),
				report.Int(s.UsefulBits), report.Int(s.IdleBits()))
		}
		return t.String()
	}
	printHeaderOnce("ext-tam", render())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := tam.BuildSchedule(tam.Distribution, cores, 16, 0)
		if err != nil {
			b.Fatal(err)
		}
		if s.Makespan <= 0 {
			b.Fatal("empty schedule")
		}
	}
}

// BenchmarkExtensionWrapperWidthSweep sweeps the wrapper width of the
// s5378-shaped core and reports test time and idle bits per width — the
// wrapper design trade-off of the paper's reference [6].
func BenchmarkExtensionWrapperWidthSweep(b *testing.B) {
	core := soc2CoreTests()[1] // s5378
	render := func() string {
		t := report.New("Extension: wrapper width sweep for the s5378 profile (T=244)",
			"W", "max si", "max so", "Test time", "Idle bits/pattern")
		for _, w := range []int{1, 2, 4, 8, 16, 32} {
			wc, err := tam.DesignWrapper(core, w)
			if err != nil {
				b.Fatal(err)
			}
			t.AddRow(fmt.Sprint(w), fmt.Sprint(wc.MaxIn()), fmt.Sprint(wc.MaxOut()),
				report.Int(tam.TestTime(core, wc)), report.Int(wc.IdleBitsPerPattern()))
		}
		return t.String()
	}
	printHeaderOnce("ext-wrap", render())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tam.DesignWrapper(core, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDynamicCompaction compares static-only against
// dynamic+static compaction on the s953 stand-in — the paper's Section 3
// distinction between the two compaction styles, made measurable.
func BenchmarkAblationDynamicCompaction(b *testing.B) {
	prof, _ := bench89.ProfileByName("s953")
	c := bench89.MustGenerate(prof)
	static := atpg.Options{BacktrackLimit: 100, RandomPatterns: 0, Compact: true, Seed: 1}
	dynamic := static
	dynamic.DynamicCompact = true
	dynamic.DynamicTargets = 24
	render := func() string {
		t := report.New("Ablation: static vs dynamic compaction (s953 stand-in)",
			"Configuration", "Raw cubes", "Patterns", "Coverage")
		for _, cfg := range []struct {
			name string
			o    atpg.Options
		}{{"static only", static}, {"dynamic + static", dynamic}} {
			r := atpg.Generate(c, cfg.o)
			t.AddRow(cfg.name, fmt.Sprint(len(r.Cubes)), fmt.Sprint(r.PatternCount()),
				fmt.Sprintf("%.1f%%", r.Coverage*100))
		}
		return t.String()
	}
	printHeaderOnce("abl-dyn", render())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := atpg.Generate(c, dynamic)
		if r.PatternCount() == 0 {
			b.Fatal("no patterns")
		}
	}
}

// BenchmarkExtensionPowerSessions runs power-constrained session
// scheduling over SOC2's cores: test power is the first benefit of modular
// testing the paper's introduction lists, and sessions are how the
// scheduling literature it cites [17, 18] exploits it.
func BenchmarkExtensionPowerSessions(b *testing.B) {
	cores := soc2CoreTests()
	var loads []power.CoreLoad
	for _, c := range cores {
		wc, err := tam.DesignWrapper(c, 8)
		if err != nil {
			b.Fatal(err)
		}
		loads = append(loads, power.CoreLoad{
			Name:  c.Name,
			Time:  tam.TestTime(c, wc),
			Power: int64(c.ScanCells() + c.Inputs + c.Outputs), // toggling cells as the power proxy
		})
	}
	render := func() string {
		t := report.New("Extension: power-constrained session scheduling (SOC2, W=8 wrappers)",
			"Power budget", "Sessions", "Total time", "vs serial")
		serial := power.SerialTime(loads)
		for _, budget := range []int64{400, 800, 1200, 2400} {
			s, err := power.ScheduleSessions(loads, budget)
			if err != nil {
				t.AddRow(fmt.Sprint(budget), "infeasible", "", "")
				continue
			}
			t.AddRow(fmt.Sprint(budget), fmt.Sprint(len(s.Sessions)),
				report.Int(s.TotalTime),
				fmt.Sprintf("%.0f%%", float64(s.TotalTime)/float64(serial)*100))
		}
		return t.String()
	}
	printHeaderOnce("ext-pow", render())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := power.ScheduleSessions(loads, 2400); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionAbortOnFail orders SOC2's core tests for an
// abort-on-first-fail flow (references [15, 16]): flaky-but-quick cores
// first minimizes the expected tester occupancy.
func BenchmarkExtensionAbortOnFail(b *testing.B) {
	cores := soc2CoreTests()
	var tests []sched.Test
	for i, c := range cores {
		wc, err := tam.DesignWrapper(c, 8)
		if err != nil {
			b.Fatal(err)
		}
		// Failure probability proxy: larger cores fail more often.
		tests = append(tests, sched.Test{
			Name:     c.Name,
			Time:     tam.TestTime(c, wc),
			FailProb: 0.02 * float64(i+1),
		})
	}
	opt, err := sched.Optimize(tests)
	if err != nil {
		b.Fatal(err)
	}
	render := func() string {
		t := report.New("Extension: abort-on-fail ordering (SOC2, synthetic fail probabilities)",
			"Order", "Expected time", "Serial time")
		t.AddRow("as-listed", report.Int(int64(sched.ExpectedTime(tests))), report.Int(sched.SerialTime(tests)))
		t.AddRow("optimized (t/p)", report.Int(int64(sched.ExpectedTime(opt))), report.Int(sched.SerialTime(opt)))
		return t.String()
	}
	printHeaderOnce("ext-aof", render())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Optimize(tests); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionShiftPower profiles the WTC shift power of the ATPG
// pattern sets of two stand-in cores — the raw data behind the power
// budget knob above.
func BenchmarkExtensionShiftPower(b *testing.B) {
	render := func() string {
		t := report.New("Extension: scan shift power (WTC) of generated pattern sets",
			"Core", "Patterns", "Peak WTC", "Mean WTC")
		for _, name := range []string{"s713", "s953"} {
			prof, _ := bench89.ProfileByName(name)
			c := bench89.MustGenerate(prof)
			res := atpg.Generate(c, atpg.DefaultOptions())
			p := power.Profiled(res.Patterns)
			t.AddRow(name, fmt.Sprint(p.Patterns), report.Int(p.PeakWTC), fmt.Sprintf("%.0f", p.MeanWTC()))
		}
		return t.String()
	}
	printHeaderOnce("ext-wtc", render())
	b.ResetTimer()
	prof, _ := bench89.ProfileByName("s713")
	c := bench89.MustGenerate(prof)
	res := atpg.Generate(c, atpg.DefaultOptions())
	for i := 0; i < b.N; i++ {
		if power.Profiled(res.Patterns).Patterns == 0 {
			b.Fatal("no profile")
		}
	}
}

// BenchmarkExtensionTDVReductionRoutes puts the paper's route to test data
// volume reduction (modular testing) next to the two classic alternatives
// on the same stand-in core: LFSR-reseeding compression and hybrid BIST.
// The three attack different waste: modularity removes cross-core pattern
// topping-off, compression removes don't-care bits within a vector, BIST
// moves random-testable faults on chip entirely.
func BenchmarkExtensionTDVReductionRoutes(b *testing.B) {
	prof, _ := bench89.ProfileByName("s5378")
	c := bench89.MustGenerate(prof)
	frame := len(c.PseudoInputs())
	render := func() string {
		t := report.New("Extension: three TDV-reduction routes on the s5378 stand-in (stimulus side)",
			"Route", "External stimulus bits", "Notes")

		res := atpg.Generate(c, atpg.DefaultOptions())
		baseline := int64(res.PatternCount() * frame)
		t.AddRow("plain external ATPG", report.Int(baseline),
			fmt.Sprintf("%d patterns x %d bits", res.PatternCount(), frame))

		// Compression: encode the pre-fill cubes (their X bits are what
		// reseeding exploits). Compaction competes for the same X bits —
		// merged cubes carry too many care bits to encode — so reseeding
		// starts from the uncompacted cube set and must be judged against
		// that baseline.
		raw := atpg.Generate(c, atpg.Options{BacktrackLimit: 100, RandomPatterns: 0, Compact: false, Seed: 1})
		t.AddRow("uncompacted external", report.Int(int64(len(raw.Cubes)*frame)),
			fmt.Sprintf("%d cubes (reseeding's own baseline)", len(raw.Cubes)))
		enc, err := compress.NewEncoder(64, frame)
		if err != nil {
			b.Fatal(err)
		}
		st := enc.CompressSet(raw.Cubes)
		t.AddRow("LFSR reseeding (64-bit seeds)", report.Int(st.SeedBits+st.FailedBits),
			fmt.Sprintf("%d encoded, %d raw, %.1fx vs uncompacted", st.Encoded, st.Failed, st.StimulusReduction()))

		bres, err := bist.Run(c, bist.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		t.AddRow("hybrid BIST (24-bit LFSR)", report.Int(int64(len(bres.TopUpPatterns)*frame)+24),
			fmt.Sprintf("%d top-up patterns, random coverage %.1f%%", len(bres.TopUpPatterns), bres.RandomCoverage*100))

		return t.String()
	}
	printHeaderOnce("ext-routes", render())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := compress.NewEncoder(32, frame)
		if err != nil {
			b.Fatal(err)
		}
		if enc.Frame() != frame {
			b.Fatal("encoder shape")
		}
	}
}

// BenchmarkExtensionDiagnosis exercises dictionary-based diagnosis on a
// stand-in core: modular testing localizes a failure to one wrapped core,
// so the dictionary is per-core and the injected fault ranks first.
func BenchmarkExtensionDiagnosis(b *testing.B) {
	prof, _ := bench89.ProfileByName("s713")
	c := bench89.MustGenerate(prof)
	flist := faults.CollapsedUniverse(c)
	res := atpg.Generate(c, atpg.DefaultOptions())
	d, err := diag.Build(c, res.Patterns, flist)
	if err != nil {
		b.Fatal(err)
	}
	render := func() string {
		// Diagnose every 50th fault, report resolution.
		perfectTop, total := 0, 0
		var avgCands float64
		for fi := 0; fi < len(flist); fi += 50 {
			obs, err := d.ObservationFor(flist[fi])
			if err != nil || len(obs) == 0 {
				continue
			}
			cands := d.Diagnose(obs)
			if len(cands) == 0 {
				continue
			}
			total++
			if cands[0].Perfect() {
				perfectTop++
			}
			n := 0
			for _, cd := range cands {
				if cd.Perfect() {
					n++
				}
			}
			avgCands += float64(n)
		}
		t := report.New("Extension: per-core fault diagnosis (s713 stand-in, ATPG pattern set)",
			"Metric", "Value")
		t.AddRow("dictionary faults", fmt.Sprint(d.NumFaults()))
		t.AddRow("patterns", fmt.Sprint(len(res.Patterns)))
		t.AddRow("sampled diagnoses", fmt.Sprint(total))
		t.AddRow("perfect top candidate", fmt.Sprintf("%d/%d", perfectTop, total))
		t.AddRow("avg indistinguishable set", fmt.Sprintf("%.1f", avgCands/float64(total)))
		return t.String()
	}
	printHeaderOnce("ext-diag", render())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs, err := d.ObservationFor(flist[0])
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Diagnose(obs)) == 0 {
			b.Fatal("no candidates")
		}
	}
}
