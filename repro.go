// Package repro is a from-scratch Go reproduction of
//
//	Ozgur Sinanoglu and Erik Jan Marinissen,
//	"Analysis of the Test Data Volume Reduction Benefit of Modular SOC
//	Testing", DATE 2008, DOI 10.1109/DATE.2008.4484683.
//
// It provides, as a single importable surface, the pieces a test-data-volume
// study needs:
//
//   - gate-level netlists with ISCAS'89 .bench I/O (Circuit, ParseBench),
//   - a PODEM-based stuck-at ATPG with fault simulation and static
//     compaction (RunATPG),
//   - logic-cone analysis, the unit of the paper's conceptual argument
//     (AnalyzeCones, ConeExample),
//   - IEEE 1500-style wrapper isolation (Isolate, ISOCost),
//   - hierarchical SOC test-parameter models and the paper's TDV
//     Equations 1-8 (SOC, Module, and their methods),
//   - the paper's experiments: SOC1/SOC2 (Tables 1-2), the ITC'02
//     benchmarks (Tables 3-4) and the worked cone example (Figures 1-2),
//     in both published-profile and live-ATPG modes.
//
// The RenderTable*/RenderFigure* functions regenerate the paper's tables
// and figures; the Live* functions run the full pipeline (generate cores,
// per-core ATPG, flatten, monolithic ATPG, compare) on synthetic stand-in
// circuits. See DESIGN.md for the substitution policy and EXPERIMENTS.md
// for paper-vs-measured results.
package repro

import (
	"context"
	"io"

	"repro/internal/atpg"
	"repro/internal/cones"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/soc"
	"repro/internal/wrapper"
)

// Circuit is a gate-level netlist (see internal/netlist for the full API).
type Circuit = netlist.Circuit

// ParseBench reads an ISCAS'89 .bench netlist.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	return netlist.ParseBench(name, r)
}

// ParseBenchString parses an in-memory .bench netlist.
func ParseBenchString(name, src string) (*Circuit, error) {
	return netlist.ParseBenchString(name, src)
}

// WriteBench serializes a circuit in .bench format.
func WriteBench(w io.Writer, c *Circuit) error { return netlist.WriteBench(w, c) }

// ATPGOptions configures test generation; see DefaultATPGOptions.
type ATPGOptions = atpg.Options

// ATPGResult is the outcome of a test generation run.
type ATPGResult = atpg.Result

// DefaultATPGOptions returns the settings used by the paper-reproduction
// experiments (backtrack limit 100, 64 random bootstrap patterns, static
// compaction, seed 1).
func DefaultATPGOptions() ATPGOptions { return atpg.DefaultOptions() }

// RunATPG generates a compacted stuck-at test set for the collapsed fault
// universe of c.
func RunATPG(c *Circuit, opts ATPGOptions) *ATPGResult {
	return atpg.Generate(c, opts)
}

// RunATPGContext is RunATPG with cancellation, deadlines, checkpoint/resume
// (ATPGOptions.Checkpoint) and typed-error reporting: a cancelled run
// returns a consistent partial result marked Incomplete, and internal
// panics surface as *PanicError instead of crashing the process.
func RunATPGContext(ctx context.Context, c *Circuit, opts ATPGOptions) (*ATPGResult, error) {
	return atpg.GenerateContext(ctx, c, opts)
}

// Resilience layer (see internal/runctl and internal/atpg): checkpointed,
// cancellable, failure-tolerant runs.
type (
	// CheckpointConfig enables periodic checkpointing of an ATPG run via
	// ATPGOptions.Checkpoint (or per-stage via LiveOptions.Checkpoint).
	CheckpointConfig = atpg.CheckpointConfig
	// PanicError is a panic recovered at a pipeline boundary, carrying the
	// operation, circuit and fault context plus the original stack.
	PanicError = runctl.PanicError
	// CheckpointError reports a failed checkpoint write, read or
	// validation, carrying the file path and operation.
	CheckpointError = runctl.CheckpointError
)

// IsCancel reports whether err stems from context cancellation or a
// deadline — the "stopped on purpose" class callers usually treat
// differently from real failures.
func IsCancel(err error) bool { return runctl.IsCancel(err) }

// Observability (see internal/obs): a Collector threaded through
// ATPGOptions.Obs or LiveOptions.Obs gathers counters, phase timings,
// histograms and a structured event trace from the whole pipeline; a
// RunManifest is the diffable end-of-run record the CLIs print with -json.
type (
	Collector       = obs.Collector
	MetricsRegistry = obs.Registry
	TraceSink       = obs.Sink
	RunManifest     = obs.Manifest
)

// NewObservability builds a collector over a fresh metrics registry. When
// w is non-nil, structured events are written to it as JSONL; with a nil w
// the collector gathers metrics only. The registry is returned for
// end-of-run snapshots and manifests.
func NewObservability(w io.Writer) (*Collector, *MetricsRegistry) {
	reg := obs.NewRegistry()
	var sink obs.Sink
	if w != nil {
		sink = obs.NewJSONLSink(w)
	}
	return obs.New(reg, sink), reg
}

// FaultUniverseSize returns the number of collapsed stuck-at faults of c.
func FaultUniverseSize(c *Circuit) int {
	return len(faults.CollapsedUniverse(c))
}

// ConeAnalysis is the per-cone decomposition of a circuit.
type ConeAnalysis = cones.Analysis

// AnalyzeCones extracts every logic cone of c and runs isolated per-cone
// ATPG on each — the paper's Section 3 decomposition.
func AnalyzeCones(c *Circuit, opts ATPGOptions) (*ConeAnalysis, error) {
	return cones.Analyze(c, opts)
}

// AnalyzeConesContext is AnalyzeCones with cancellation at per-cone (and,
// inside each cone's ATPG, per-fault) granularity.
func AnalyzeConesContext(ctx context.Context, c *Circuit, opts ATPGOptions) (*ConeAnalysis, error) {
	return cones.AnalyzeContext(ctx, c, opts)
}

// ConeModel is the analytic cone model of the paper's Figures 1-2.
type ConeModel = cones.Model

// ConeExample returns the paper's worked example: cones A/B/C with
// 20/10/20 flip-flops and 200/300/400 partial patterns.
func ConeExample() ConeModel { return cones.PaperExample() }

// Isolate wraps a core netlist with dedicated IEEE 1500-style wrapper
// cells (modelled as scan cells) on every terminal.
func Isolate(c *Circuit) (*wrapper.IsolationResult, error) { return wrapper.Isolate(c) }

// WrapperSpec describes a wrapper by terminal counts.
type WrapperSpec = wrapper.Spec

// ISOCost computes the paper's Equation 5 for a parent core and its direct
// children.
func ISOCost(parent WrapperSpec, children []WrapperSpec) int {
	return wrapper.ISOCost(parent, children)
}

// Module is one SOC module (core or top level) with its test parameters;
// SOC is a complete chip profile. Their methods implement Equations 1-8.
type (
	Module = core.Module
	SOC    = core.SOC
	Params = core.Params
	Report = core.Report
)

// SOC1 returns the paper's SOC1 profile (Figure 4, Table 1) with the
// published per-core parameters and the measured T_mono = 216.
func SOC1() *SOC { return soc.SOC1Profile().Profile() }

// SOC2 returns the paper's SOC2 profile (Figure 5, Table 2), T_mono = 945.
func SOC2() *SOC { return soc.SOC2Profile().Profile() }
