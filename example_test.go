package repro_test

import (
	"fmt"

	"repro"
)

// The bread-and-butter flow: parse a core, run ATPG, read the pattern
// count that feeds the TDV equations.
func ExampleRunATPG() {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
n = NAND(a, b)
y = NOT(n)
`
	c, err := repro.ParseBenchString("tiny", src)
	if err != nil {
		panic(err)
	}
	res := repro.RunATPG(c, repro.DefaultATPGOptions())
	fmt.Printf("coverage %.0f%% with %d faults\n", res.Coverage*100, res.NumFaults)
	// Output:
	// coverage 100% with 4 faults
}

// The paper's SOC1 profile evaluated through Equations 1-8.
func ExampleSOC1() {
	s := repro.SOC1()
	r := s.Analyze()
	fmt.Printf("modular %d vs monolithic %d bits (ratio %.2f)\n",
		r.TDVModular, r.TDVMonoAct, r.RatioVsActual)
	// Output:
	// modular 45183 vs monolithic 129816 bits (ratio 2.87)
}

// The Section 3 worked example of Figures 1 and 2.
func ExampleConeExample() {
	m := repro.ConeExample()
	fmt.Printf("monolithic %d, modular %d, reduction %.0f%%\n",
		m.MonolithicStimulusBits(), m.ModularStimulusBits(), m.Reduction()*100)
	// Output:
	// monolithic 20000, modular 15000, reduction 25%
}

// Equation 5's isolation cost for a hierarchical core (p34392's Core 18).
func ExampleISOCost() {
	parent := repro.WrapperSpec{Core: "Core18", Inputs: 175, Outputs: 212}
	child := repro.WrapperSpec{Core: "Core19", Inputs: 62, Outputs: 25}
	fmt.Println(repro.ISOCost(parent, []repro.WrapperSpec{child}))
	// Output:
	// 474
}

// Building a custom SOC profile and reading the TDV comparison.
func ExampleSOC() {
	top := &repro.Module{
		Name:                  "Top",
		Params:                repro.Params{Inputs: 10, Outputs: 10},
		PortsTesterAccessible: true,
		Children: []*repro.Module{
			{Name: "easy", Params: repro.Params{Inputs: 8, Outputs: 8, ScanCells: 500, Patterns: 100}},
			{Name: "hard", Params: repro.Params{Inputs: 8, Outputs: 8, ScanCells: 500, Patterns: 1000}},
		},
	}
	s := &repro.SOC{Name: "demo", Top: top}
	r := s.Analyze()
	fmt.Printf("modular vs optimistic monolithic: %+.0f%%\n", r.ReductionVsOpt*100)
	// Output:
	// modular vs optimistic monolithic: -45%
}

// Wrapper chain design and test time for a wrapped core.
func ExampleDesignWrapperChains() {
	core := repro.CoreTest{
		Name: "s5378", Inputs: 35, Outputs: 49,
		Chains: []int{45, 45, 45, 44}, Patterns: 244,
	}
	wc, err := repro.DesignWrapperChains(core, 8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("depth %d/%d, test time %d cycles\n",
		wc.MaxIn(), wc.MaxOut(), repro.CoreTestTime(core, wc))
	// Output:
	// depth 45/45, test time 11269 cycles
}
